"""The campaign engine: shard an experiment grid across a worker pool.

Determinism contract: a campaign's results are a pure function of
(experiment, grid, root seed). Every sample's seed is spawned up front
in grid order (:mod:`repro.harness.seeding`), every sample runs in its
own process-safe function call with no shared mutable state, and records
are re-assembled by grid index — so ``workers=1`` and ``workers=16``
produce byte-identical deterministic manifests (see
:func:`repro.harness.manifest.manifest_fingerprint`). The on-disk cache
and worker pool only change *when* a sample's record materializes, never
*what* it contains.

Experiments register a :class:`CampaignExperiment` (usually at module
import, see :mod:`repro.experiments.campaigns`); pool workers re-import
the defining module by name, so registration must be an import side
effect of that module.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
from contextlib import ExitStack
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import obs
from repro.harness.cache import ResultCache, code_fingerprint, sample_key
from repro.harness.manifest import (
    MANIFEST_SCHEMA_VERSION,
    manifest_fingerprint,
    write_manifest,
)
from repro.harness.seeding import spawn_sample_seeds
from repro.harness.timing import PhaseTimer

#: Sample functions take (config, seed, timer) and return a JSON-able dict.
SampleFn = Callable[[dict, int, PhaseTimer], dict]


@dataclass(frozen=True)
class CampaignExperiment:
    """One runnable experiment grid.

    ``grids`` maps a preset name (``"smoke"``, ``"default"``, ``"full"``
    — whatever the experiment defines) to a list of JSON-able config
    dicts, one per sample. ``version`` participates in the cache key;
    bump it when a dependency of the sample function changes semantics
    without touching the defining module's source.
    """

    name: str
    sample_fn: SampleFn
    grids: Callable[[str], list[dict]]
    version: str = "1"
    describe: str = ""
    summarize: Callable[["CampaignResult"], str] | None = None

    @property
    def module(self) -> str:
        """Module whose import registers this experiment (for workers)."""
        return self.sample_fn.__module__


@dataclass(frozen=True)
class SampleRecord:
    """One completed grid point, exactly as it appears in the manifest."""

    index: int
    seed: int
    config: dict
    result: dict
    wall_time_s: float
    worker: str
    cached: bool
    timings: dict
    #: Per-sample obs metrics snapshot; only present on observed runs.
    metrics: dict | None = None

    def to_dict(self) -> dict:
        data = {
            "index": self.index,
            "seed": self.seed,
            "config": self.config,
            "result": self.result,
            "wall_time_s": self.wall_time_s,
            "worker": self.worker,
            "cached": self.cached,
            "timings": self.timings,
        }
        if self.metrics is not None:
            data["metrics"] = self.metrics
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SampleRecord":
        return cls(
            **{
                k: data.get(k) if k == "metrics" else data[k]
                for k in cls.__dataclass_fields__
            }
        )


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    experiment: str
    grid: str
    root_seed: int
    workers: int
    records: list[SampleRecord]
    manifest: dict
    manifest_path: Path | None = None

    @property
    def results(self) -> list[dict]:
        """Per-sample result dicts, in grid order."""
        return [record.result for record in self.records]

    @property
    def fingerprint(self) -> str:
        """Scheduling-independent hash of the campaign's results."""
        return manifest_fingerprint(self.manifest)


# --------------------------------------------------------------- registry
_REGISTRY: dict[str, CampaignExperiment] = {}


def register_experiment(experiment: CampaignExperiment) -> CampaignExperiment:
    """Register (or re-register, idempotently) a campaign experiment."""
    _REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> CampaignExperiment:
    """Look up a registered experiment by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown campaign experiment {name!r}; registered: {known}"
        ) from None


def list_experiments() -> list[CampaignExperiment]:
    """All registered experiments, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# --------------------------------------------------------------- execution
def _execute_sample(
    experiment: CampaignExperiment,
    index: int,
    config: dict,
    seed: int,
    observe: bool = False,
) -> dict:
    """Run one grid point; returns its manifest record as a dict.

    With ``observe`` the sample runs inside its own isolated obs session:
    the record gains a ``"metrics"`` snapshot (kept in the manifest and
    merged campaign-wide) and a transient ``"obs"`` blob of spans/events
    that :func:`run_campaign` strips into the trace file — it never
    reaches the cache or the manifest.
    """
    timer = PhaseTimer()
    start = time.perf_counter()
    if observe:
        with obs.isolated(enabled=True) as session:
            result = experiment.sample_fn(dict(config), seed, timer)
            payload = session.collect()
    else:
        result = experiment.sample_fn(dict(config), seed, timer)
        payload = None
    wall = time.perf_counter() - start
    record = {
        "index": index,
        "seed": seed,
        "config": config,
        "result": result,
        "wall_time_s": round(wall, 6),
        "worker": multiprocessing.current_process().name,
        "cached": False,
        "timings": timer.as_dict(),
    }
    if payload is not None:
        record["metrics"] = payload["metrics"]
        record["obs"] = {"spans": payload["spans"], "events": payload["events"]}
    return record


def _pool_worker(task: tuple[str, str, int, dict, int, bool]) -> dict:
    """Pool entry point: re-import the registering module, then run."""
    module, name, index, config, seed, observe = task
    importlib.import_module(module)
    return _execute_sample(get_experiment(name), index, config, seed, observe)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (where available) inherits the parent's imports, so even
    # experiments registered from non-importable modules (tests, benches)
    # reach the workers; spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_campaign(
    experiment: str | CampaignExperiment,
    grid: str | list[dict] = "default",
    root_seed: int = 0,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    manifest_path: str | Path | None = None,
    observe: bool = False,
    trace_path: str | Path | None = None,
) -> CampaignResult:
    """Run every grid point of ``experiment``; return records + manifest.

    ``grid`` is a preset name resolved via the experiment's ``grids``
    hook, or an explicit list of config dicts (recorded as ``"custom"``).
    ``workers=1`` runs inline in this process; ``workers>1`` shards the
    non-cached points over a multiprocessing pool. Results are identical
    either way. ``cache_dir=None`` disables the on-disk cache.

    ``observe`` (implied by ``trace_path``) runs every sample inside its
    own obs session: samples carry a ``"metrics"`` snapshot, the manifest
    gains the campaign-wide merged snapshot under ``"metrics"``, and —
    when ``trace_path`` is given — a JSONL trace is written combining
    campaign-level phase spans with each sample's spans and events
    (labelled ``sample=<index>``). The deterministic fingerprint covers
    only (index, seed, config, result), so observed and unobserved runs
    of the same campaign fingerprint identically.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(experiment, str):
        experiment = get_experiment(experiment)
    observe = observe or trace_path is not None

    campaign_payload = None
    sample_obs: dict[int, dict] = {}
    with ExitStack() as stack:
        session = stack.enter_context(obs.isolated(enabled=True)) if observe else None
        campaign_timer = PhaseTimer(span_prefix="campaign")
        with campaign_timer.phase("grid"):
            if isinstance(grid, str):
                grid_label, configs = grid, experiment.grids(grid)
            else:
                grid_label, configs = "custom", list(grid)
            seeds = spawn_sample_seeds(root_seed, len(configs))
            code = code_fingerprint(experiment.sample_fn, experiment.version)

        cache = ResultCache(cache_dir) if cache_dir is not None else None
        records: dict[int, dict] = {}
        pending: list[tuple[int, dict, int, str]] = []
        with campaign_timer.phase("cache_scan"):
            for index, (config, seed) in enumerate(zip(configs, seeds)):
                key = sample_key(experiment.name, config, seed, code)
                hit = cache.get(experiment.name, key) if cache is not None else None
                if hit is not None:
                    hit = dict(hit)
                    hit["cached"] = True
                    if not observe:
                        # Keep unobserved manifests free of stale metrics
                        # from an earlier observed run that warmed the cache.
                        hit.pop("metrics", None)
                    records[index] = hit
                else:
                    pending.append((index, config, seed, key))

        start = time.perf_counter()
        with campaign_timer.phase("execute"):
            if workers == 1 or len(pending) <= 1:
                fresh = [
                    _execute_sample(experiment, index, config, seed, observe)
                    for index, config, seed, _ in pending
                ]
            else:
                tasks = [
                    (experiment.module, experiment.name, index, config, seed, observe)
                    for index, config, seed, _ in pending
                ]
                with _pool_context().Pool(processes=min(workers, len(tasks))) as pool:
                    fresh = list(pool.imap_unordered(_pool_worker, tasks, chunksize=1))
        wall_s = time.perf_counter() - start

        with campaign_timer.phase("finalize"):
            keys = {index: key for index, _, _, key in pending}
            for record in fresh:
                blob = record.pop("obs", None)
                if blob is not None:
                    sample_obs[record["index"]] = blob
                records[record["index"]] = record
                if cache is not None:
                    cache.put(experiment.name, keys[record["index"]], record)
            ordered = [records[index] for index in range(len(configs))]
        manifest = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "experiment": experiment.name,
            "grid": grid_label,
            "root_seed": root_seed,
            "workers": workers,
            "code": code,
            "totals": {
                "samples": len(ordered),
                "cached": sum(1 for r in ordered if r["cached"]),
                "wall_s": round(wall_s, 6),
            },
            "campaign_timings": campaign_timer.as_dict(),
            "samples": ordered,
        }
        if observe:
            manifest["metrics"] = obs.merge_snapshots(
                r["metrics"] for r in ordered if r.get("metrics")
            )
        if session is not None:
            campaign_payload = session.collect()

    path = None
    if manifest_path is not None:
        path = write_manifest(manifest_path, manifest)
    if trace_path is not None:
        _write_campaign_trace(
            trace_path, experiment.name, grid_label, root_seed, workers,
            campaign_payload, sample_obs, manifest.get("metrics"),
        )
    return CampaignResult(
        experiment=experiment.name,
        grid=grid_label,
        root_seed=root_seed,
        workers=workers,
        records=[SampleRecord.from_dict(r) for r in ordered],
        manifest=manifest,
        manifest_path=path,
    )


def _write_campaign_trace(
    trace_path: str | Path,
    experiment: str,
    grid_label: str,
    root_seed: int,
    workers: int,
    campaign_payload: dict | None,
    sample_obs: dict[int, dict],
    merged_metrics: dict | None,
) -> Path:
    """Assemble the combined campaign trace and write it as JSONL.

    Campaign-level spans are labelled ``scope=campaign``; each sample's
    spans/events gain a ``sample=<index>`` label, which the Chrome-trace
    exporter maps to one lane per sample.
    """
    payload = {"spans": [], "events": [], "metrics": merged_metrics}
    if campaign_payload is not None:
        for span in campaign_payload["spans"]:
            span["labels"] = {**span.get("labels", {}), "scope": "campaign"}
            payload["spans"].append(span)
        payload["events"].extend(campaign_payload["events"])
    for index in sorted(sample_obs):
        blob = sample_obs[index]
        for span in blob["spans"]:
            span["labels"] = {**span.get("labels", {}), "sample": index}
            payload["spans"].append(span)
        for evt in blob["events"]:
            evt["payload"] = {**evt.get("payload", {}), "sample": index}
            payload["events"].append(evt)
    meta = {
        "experiment": experiment,
        "grid": grid_label,
        "root_seed": root_seed,
        "workers": workers,
        "samples_traced": len(sample_obs),
    }
    return obs.write_trace(trace_path, payload, meta=meta)
