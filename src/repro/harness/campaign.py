"""The campaign engine: shard an experiment grid across a worker pool.

Determinism contract: a campaign's results are a pure function of
(experiment, grid, root seed). Every sample's seed is spawned up front
in grid order (:mod:`repro.harness.seeding`), every sample runs in its
own process-safe function call with no shared mutable state, and records
are re-assembled by grid index — so ``workers=1`` and ``workers=16``
produce byte-identical deterministic manifests (see
:func:`repro.harness.manifest.manifest_fingerprint`). The on-disk cache
and worker pool only change *when* a sample's record materializes, never
*what* it contains. Retries re-run a sample with its original spawned
seed, so a campaign that survived transient failures fingerprints
identically to one that never failed.

Fault tolerance: every finished record is checkpointed into the
:class:`~repro.harness.cache.ResultCache` the moment it completes, so an
interrupted campaign loses at most the in-flight samples. A
:class:`FaultPolicy` bounds each sample with a wall-clock timeout and
retries with linear backoff; samples that still fail are quarantined as
structured ``status: "failed"`` records in the manifest instead of an
exception killing their siblings. ``run_campaign(..., resume=True)``
re-runs only failed or missing grid points against the existing cache,
and ``FaultPolicy.max_failures`` aborts early (:class:`CampaignAborted`)
when the whole grid is broken.

Experiments register a :class:`CampaignExperiment` (usually at module
import, see :mod:`repro.experiments.campaigns`); supervised workers
re-import the defining module by name, so registration must be an import
side effect of that module.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
import traceback
from contextlib import ExitStack
from dataclasses import MISSING, dataclass, field
from pathlib import Path
from typing import Callable

from repro import obs
from repro.harness.cache import ResultCache, code_fingerprint, sample_key
from repro.harness.manifest import (
    MANIFEST_SCHEMA_VERSION,
    manifest_fingerprint,
    write_manifest,
)
from repro.harness.seeding import spawn_sample_seeds
from repro.harness.timing import PhaseTimer

#: Sample functions take (config, seed, timer) and return a JSON-able dict.
SampleFn = Callable[[dict, int, PhaseTimer], dict]


@dataclass(frozen=True)
class FaultPolicy:
    """Per-sample fault handling for a campaign run.

    ``timeout_s``
        Wall-clock budget for one attempt; a sample still running past it
        is terminated (supervised execution only — setting a timeout
        forces supervised child processes even at ``workers=1``).
    ``max_attempts``
        Total attempts per sample (1 = no retries). Every attempt re-runs
        with the sample's original spawned seed, so a retried success is
        bit-identical to a first-try success.
    ``backoff_s``
        Base delay between attempts; attempt *k* waits ``backoff_s * k``.
    ``max_failures``
        Abort the campaign (:class:`CampaignAborted`) once more than this
        many samples have been quarantined this run; ``None`` never
        aborts. Completed samples stay checkpointed either way.
    """

    timeout_s: float | None = None
    max_attempts: int = 1
    backoff_s: float = 0.0
    max_failures: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")


#: Default policy: one attempt, no timeout, quarantine but never abort.
NO_RETRY = FaultPolicy()


@dataclass(frozen=True)
class CampaignControl:
    """External control surface for a long-running campaign.

    ``should_cancel``
        Polled between samples (and between scheduler passes of the
        supervised pool). Returning ``True`` raises
        :class:`CampaignCancelled` after terminating in-flight attempts;
        completed samples stay checkpointed in the result cache, so a
        later ``run_campaign(..., resume=True)`` re-runs only what was
        in flight — a cancelled campaign is always resumable.
    ``on_record``
        Called in the coordinating process with every finished record
        dict (ok and quarantined alike) the moment it checkpoints — the
        live progress stream the campaign service's NDJSON tail is built
        on. Must not mutate the record.
    """

    should_cancel: Callable[[], bool] | None = None
    on_record: Callable[[dict], None] | None = None


class CampaignCancelled(RuntimeError):
    """Raised when ``CampaignControl.should_cancel`` interrupts a run.

    Completed samples remain checkpointed; in-flight attempts were
    terminated un-checkpointed and will re-run on resume.
    """

    def __init__(self, experiment: str, completed: int, total: int) -> None:
        super().__init__(
            f"campaign {experiment!r} cancelled with {completed}/{total} "
            "samples completed; completed samples remain checkpointed and "
            "the campaign is resumable"
        )
        self.experiment = experiment
        self.completed = completed
        self.total = total


class CampaignAborted(RuntimeError):
    """Raised when quarantined failures exceed ``FaultPolicy.max_failures``."""

    def __init__(self, experiment: str, failures: int, max_failures: int) -> None:
        super().__init__(
            f"campaign {experiment!r} aborted after {failures} quarantined "
            f"sample failures (max_failures={max_failures}); completed "
            f"samples remain checkpointed in the result cache"
        )
        self.experiment = experiment
        self.failures = failures
        self.max_failures = max_failures


@dataclass(frozen=True)
class CampaignExperiment:
    """One runnable experiment grid.

    ``grids`` maps a preset name (``"smoke"``, ``"default"``, ``"full"``
    — whatever the experiment defines) to a list of JSON-able config
    dicts, one per sample. ``version`` participates in the cache key;
    bump it when a dependency of the sample function changes semantics
    without touching the defining module's source.

    ``batch_fn``, when set, enables sample-axis batching via
    ``run_campaign(..., batch=True)``: it receives parallel lists of
    config dicts and seeds plus a shared :class:`PhaseTimer` and must
    return one result dict per sample, bit-identical to what
    ``sample_fn`` would produce for the same (config, seed) — the
    manifest fingerprint must not change. ``batch_key`` partitions the
    pending samples into stackable groups (samples whose configs map to
    the same key run as one batch); leave it ``None`` when every sample
    can stack into a single simulation.
    """

    name: str
    sample_fn: SampleFn
    grids: Callable[[str], list[dict]]
    version: str = "1"
    describe: str = ""
    summarize: Callable[["CampaignResult"], str] | None = None
    batch_fn: Callable[[list[dict], list[int], "PhaseTimer"], list[dict]] | None = None
    batch_key: Callable[[dict], object] | None = None
    #: Grid preset names ``grids`` accepts — the discoverable catalogue
    #: (``python -m repro campaign --list``, ``GET /experiments``) and
    #: what job submissions are validated against. Experiments with
    #: parameterized presets (fuzz's ``profile:count``) list the bases.
    presets: tuple[str, ...] = ("smoke", "default", "full")

    @property
    def module(self) -> str:
        """Module whose import registers this experiment (for workers)."""
        return self.sample_fn.__module__


@dataclass(frozen=True)
class SampleRecord:
    """One completed grid point, exactly as it appears in the manifest."""

    index: int
    seed: int
    config: dict
    result: dict | None
    wall_time_s: float
    worker: str
    cached: bool
    timings: dict
    #: ``"ok"`` or ``"failed"`` (quarantined after exhausting attempts).
    status: str = "ok"
    #: How many attempts this record took (retries count).
    attempts: int = 1
    #: Structured error (kind/type/message) for failed records only.
    error: dict | None = None
    #: Per-sample obs metrics snapshot; only present on observed runs.
    metrics: dict | None = None
    #: Property-oracle verdict block (schema v3); present when the
    #: sample function returns an ``"oracles"`` entry in its result.
    oracles: dict | None = None

    def to_dict(self) -> dict:
        data = {
            "index": self.index,
            "seed": self.seed,
            "config": self.config,
            "result": self.result,
            "wall_time_s": self.wall_time_s,
            "worker": self.worker,
            "cached": self.cached,
            "timings": self.timings,
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.error is not None:
            data["error"] = self.error
        if self.metrics is not None:
            data["metrics"] = self.metrics
        if self.oracles is not None:
            data["oracles"] = self.oracles
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SampleRecord":
        """Build from a manifest/cache dict; missing optional fields
        (records written by an older schema) fall back to their defaults
        instead of raising ``KeyError``."""
        kwargs = {}
        for name, spec in cls.__dataclass_fields__.items():
            if name in data:
                kwargs[name] = data[name]
            elif spec.default is not MISSING:
                kwargs[name] = spec.default
            else:
                raise KeyError(name)
        return cls(**kwargs)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    experiment: str
    grid: str
    root_seed: int
    workers: int
    records: list[SampleRecord]
    manifest: dict
    manifest_path: Path | None = None

    @property
    def results(self) -> list[dict]:
        """Per-sample result dicts, in grid order (None for failures)."""
        return [record.result for record in self.records]

    @property
    def failed_records(self) -> list[SampleRecord]:
        """The quarantined samples, in grid order."""
        return [record for record in self.records if record.status != "ok"]

    @property
    def fingerprint(self) -> str:
        """Scheduling-independent hash of the campaign's results."""
        return manifest_fingerprint(self.manifest)


# --------------------------------------------------------------- registry
_REGISTRY: dict[str, CampaignExperiment] = {}


def register_experiment(experiment: CampaignExperiment) -> CampaignExperiment:
    """Register (or re-register, idempotently) a campaign experiment."""
    _REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> CampaignExperiment:
    """Look up a registered experiment by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown campaign experiment {name!r}; registered: {known}"
        ) from None


def list_experiments() -> list[CampaignExperiment]:
    """All registered experiments, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# --------------------------------------------------------------- execution
def _execute_sample(
    experiment: CampaignExperiment,
    index: int,
    config: dict,
    seed: int,
    observe: bool = False,
) -> dict:
    """Run one grid point (one attempt); returns its record as a dict.

    With ``observe`` the sample runs inside its own isolated obs session:
    the record gains a ``"metrics"`` snapshot (kept in the manifest and
    merged campaign-wide) and a transient ``"obs"`` blob of spans/events
    that :func:`run_campaign` strips into the trace file — it never
    reaches the cache or the manifest.

    A sample function that returns an ``"oracles"`` entry in its result
    (the property-oracle verdict block, see :mod:`repro.harness.oracles`)
    has it lifted to a top-level record field — deterministic, hashed by
    the manifest fingerprint, and queryable without digging into
    experiment-specific result shapes.
    """
    timer = PhaseTimer()
    start = time.perf_counter()
    if observe:
        with obs.isolated(enabled=True) as session:
            result = experiment.sample_fn(dict(config), seed, timer)
            payload = session.collect()
    else:
        result = experiment.sample_fn(dict(config), seed, timer)
        payload = None
    wall = time.perf_counter() - start
    oracles = result.pop("oracles", None) if isinstance(result, dict) else None
    record = {
        "index": index,
        "seed": seed,
        "config": config,
        "result": result,
        "wall_time_s": round(wall, 6),
        "worker": multiprocessing.current_process().name,
        "cached": False,
        "timings": timer.as_dict(),
        "status": "ok",
        "attempts": 1,
    }
    if oracles is not None:
        record["oracles"] = oracles
    if payload is not None:
        record["metrics"] = payload["metrics"]
        record["obs"] = {"spans": payload["spans"], "events": payload["events"]}
    return record


def _describe_error(exc: BaseException, kind: str) -> dict:
    """Structured, JSON-able description of a sample failure."""
    return {
        "kind": kind,
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(limit=20),
    }


def _crash_error(process: multiprocessing.process.BaseProcess) -> dict:
    return {
        "kind": "crash",
        "type": "WorkerCrash",
        "message": (
            f"worker {process.name} exited with code {process.exitcode} "
            "before reporting a result"
        ),
    }


def _timeout_error(timeout_s: float) -> dict:
    return {
        "kind": "timeout",
        "type": "SampleTimeout",
        "message": (
            f"sample exceeded the per-attempt wall-clock timeout of "
            f"{timeout_s} s and was terminated"
        ),
    }


def _failure_record(
    index: int, config: dict, seed: int, error: dict,
    attempts: int, wall_s: float, worker: str,
) -> dict:
    """The quarantined manifest entry for a sample that exhausted retries."""
    return {
        "index": index,
        "seed": seed,
        "config": config,
        "result": None,
        "wall_time_s": round(wall_s, 6),
        "worker": worker,
        "cached": False,
        "timings": {},
        "status": "failed",
        "attempts": attempts,
        "error": error,
    }


def _note_retry(experiment: str, index: int, attempt: int, error: dict) -> None:
    if obs.OBS.enabled:
        obs.OBS.metrics.inc(
            "campaign_retries_total",
            experiment=experiment, kind=error.get("kind", "unknown"),
        )
    obs.event(
        "warning", "harness.campaign", "sample_retry",
        index=index, attempt=attempt, kind=error.get("kind"),
    )


def _child_entry(
    conn, module: str, name: str,
    index: int, config: dict, seed: int, observe: bool,
) -> None:
    """Supervised child: run one attempt, report through the pipe.

    Sends ``("ok", record)`` or ``("error", error_dict)``; a child that
    dies without sending anything is detected by the parent as a crash.
    """
    try:
        importlib.import_module(module)
        record = _execute_sample(get_experiment(name), index, config, seed, observe)
        conn.send(("ok", record))
    except BaseException as exc:
        try:
            conn.send(("error", _describe_error(exc, "exception")))
        except BaseException:
            pass
    finally:
        conn.close()


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (where available) inherits the parent's imports, so even
    # experiments registered from non-importable modules (tests, benches)
    # reach the workers; spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class _Attempt:
    """One supervised in-flight attempt (child process + result pipe)."""

    process: multiprocessing.process.BaseProcess
    conn: object
    index: int
    config: dict
    seed: int
    attempt: int
    started: float = field(default_factory=time.monotonic)


def _reap(slot: _Attempt) -> tuple[str, dict] | None:
    """Drain a finished/late result from a slot's pipe, if any."""
    if not slot.conn.poll():
        return None
    try:
        kind, payload = slot.conn.recv()
    except (EOFError, OSError):
        return None
    return (kind, payload)


def _poll_attempt(slot: _Attempt, policy: FaultPolicy) -> tuple[str, dict] | None:
    """One scheduler look at an in-flight attempt.

    Returns ``None`` while still running, else ``("ok", record)`` or
    ``("error", error_dict)`` — covering the three failure paths: an
    exception reported by the child, a hard crash (child died without
    reporting), and a wall-clock timeout (child terminated by us).
    """
    outcome = _reap(slot)
    if outcome is not None:
        slot.process.join()
        return outcome
    if not slot.process.is_alive():
        slot.process.join()
        # The result may have landed between the poll and the liveness
        # check — prefer it over declaring a crash.
        return _reap(slot) or ("error", _crash_error(slot.process))
    if (
        policy.timeout_s is not None
        and time.monotonic() - slot.started > policy.timeout_s
    ):
        slot.process.terminate()
        slot.process.join()
        return _reap(slot) or ("error", _timeout_error(policy.timeout_s))
    return None


def _run_supervised(
    experiment: CampaignExperiment,
    pending: list[tuple[int, dict, int, str]],
    observe: bool,
    policy: FaultPolicy,
    workers: int,
    checkpoint: Callable[[dict], None],
    quarantine: Callable[[dict], None],
    check_cancel: Callable[[], None] = lambda: None,
) -> None:
    """Fan pending samples over supervised child processes.

    One child per attempt (with a result pipe), at most ``workers`` alive
    at once. All fault policy lives in this parent loop: exceptions come
    back through the pipe, hard crashes are children that died silently,
    timeouts are terminated, and retries are re-dispatched with the
    sample's original seed after backoff. Finished records stream into
    ``checkpoint`` the moment they arrive.
    """
    ctx = _pool_context()
    ready = [(index, config, seed, 1) for index, config, seed, _ in pending]
    ready.reverse()  # pop() from the tail dispatches in grid order
    delayed: list[tuple[float, tuple[int, dict, int, int]]] = []
    running: list[_Attempt] = []
    try:
        while ready or delayed or running:
            check_cancel()
            now = time.monotonic()
            if delayed:
                due = [item for at, item in delayed if at <= now]
                delayed = [(at, item) for at, item in delayed if at > now]
                ready.extend(reversed(due))
            while ready and len(running) < workers:
                index, config, seed, attempt = ready.pop()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_child_entry,
                    args=(child_conn, experiment.module, experiment.name,
                          index, config, seed, observe),
                )
                process.start()
                child_conn.close()
                running.append(
                    _Attempt(process, parent_conn, index, config, seed, attempt)
                )
            progressed = False
            for slot in list(running):
                outcome = _poll_attempt(slot, policy)
                if outcome is None:
                    continue
                progressed = True
                running.remove(slot)
                slot.conn.close()
                kind, payload = outcome
                if kind == "ok":
                    payload["attempts"] = slot.attempt
                    checkpoint(payload)
                elif slot.attempt < policy.max_attempts:
                    _note_retry(experiment.name, slot.index, slot.attempt, payload)
                    retry_at = time.monotonic() + policy.backoff_s * slot.attempt
                    delayed.append(
                        (retry_at,
                         (slot.index, slot.config, slot.seed, slot.attempt + 1))
                    )
                else:
                    quarantine(_failure_record(
                        slot.index, slot.config, slot.seed, payload,
                        slot.attempt, time.monotonic() - slot.started,
                        slot.process.name,
                    ))
            if not progressed:
                time.sleep(0.005)
    finally:
        for slot in running:
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join()
            slot.conn.close()


def _run_inline(
    experiment: CampaignExperiment,
    pending: list[tuple[int, dict, int, str]],
    observe: bool,
    policy: FaultPolicy,
    checkpoint: Callable[[dict], None],
    quarantine: Callable[[dict], None],
    check_cancel: Callable[[], None] = lambda: None,
) -> None:
    """Serial in-process execution with the same retry/quarantine policy.

    Exceptions are quarantined exactly like the supervised path (so
    serial and parallel failure handling agree); wall-clock timeouts and
    hard-crash containment need child processes, which is why a policy
    with ``timeout_s`` set always routes to :func:`_run_supervised`.
    """
    for index, config, seed, _ in pending:
        check_cancel()
        attempt = 1
        while True:
            start = time.perf_counter()
            try:
                record = _execute_sample(experiment, index, config, seed, observe)
            except Exception as exc:
                error = _describe_error(exc, "exception")
                if attempt < policy.max_attempts:
                    _note_retry(experiment.name, index, attempt, error)
                    if policy.backoff_s > 0.0:
                        time.sleep(policy.backoff_s * attempt)
                    attempt += 1
                    continue
                quarantine(_failure_record(
                    index, config, seed, error, attempt,
                    time.perf_counter() - start,
                    multiprocessing.current_process().name,
                ))
                break
            record["attempts"] = attempt
            checkpoint(record)
            break


def _run_batched(
    experiment: CampaignExperiment,
    pending: list[tuple[int, dict, int, str]],
    checkpoint: Callable[[dict], None],
    check_cancel: Callable[[], None] = lambda: None,
) -> list[tuple[int, dict, int, str]]:
    """Run pending samples through the experiment's sample-axis batch hook.

    Pending samples are grouped by ``batch_key(config)`` (no key hook →
    one stacked group) and each group runs in-process through
    ``batch_fn``. Per-sample records are assembled exactly like
    :func:`_execute_sample`'s (the deterministic fingerprint covers only
    index/seed/config/result/status, so shared wall-time and timings are
    invisible to it). A group whose batch call raises — or returns the
    wrong number of results — falls back to the ordinary fault-tolerant
    per-sample path: its items are returned as the new pending list.
    """
    key_fn = experiment.batch_key
    groups: dict[object, list[tuple[int, dict, int, str]]] = {}
    for item in pending:
        key = key_fn(item[1]) if key_fn is not None else None
        groups.setdefault(key, []).append(item)
    leftover: list[tuple[int, dict, int, str]] = []
    worker = multiprocessing.current_process().name
    for group_key, items in groups.items():
        check_cancel()
        timer = PhaseTimer()
        start = time.perf_counter()
        try:
            results = experiment.batch_fn(
                [dict(config) for _, config, _, _ in items],
                [seed for _, _, seed, _ in items],
                timer,
            )
            if len(results) != len(items):
                raise ValueError(
                    f"batch_fn returned {len(results)} results for "
                    f"{len(items)} samples"
                )
        except Exception as exc:
            error = _describe_error(exc, "exception")
            obs.event(
                "warning", "harness.campaign", "batch_fallback",
                group=str(group_key), samples=len(items),
                kind=error.get("kind"), type=error.get("type"),
                message=error.get("message"),
            )
            leftover.extend(items)
            continue
        wall = round((time.perf_counter() - start) / len(items), 6)
        timings = timer.as_dict()
        for (index, config, seed, _), result in zip(items, results):
            oracles = (
                result.pop("oracles", None) if isinstance(result, dict) else None
            )
            record = {
                "index": index,
                "seed": seed,
                "config": config,
                "result": result,
                "wall_time_s": wall,
                "worker": worker,
                "cached": False,
                "timings": timings,
                "status": "ok",
                "attempts": 1,
            }
            if oracles is not None:
                record["oracles"] = oracles
            checkpoint(record)
    return leftover


def run_campaign(
    experiment: str | CampaignExperiment,
    grid: str | list[dict] = "default",
    root_seed: int = 0,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    manifest_path: str | Path | None = None,
    observe: bool = False,
    trace_path: str | Path | None = None,
    policy: FaultPolicy | None = None,
    resume: bool = False,
    batch: bool = False,
    control: CampaignControl | None = None,
) -> CampaignResult:
    """Run every grid point of ``experiment``; return records + manifest.

    ``grid`` is a preset name resolved via the experiment's ``grids``
    hook, or an explicit list of config dicts (recorded as ``"custom"``).
    ``workers=1`` runs inline in this process; ``workers>1`` shards the
    non-cached points over supervised worker processes. Results are
    identical either way. ``cache_dir=None`` disables the on-disk cache.

    Fault tolerance: each finished sample is checkpointed into the cache
    immediately (an interrupted campaign keeps all completed work), and
    ``policy`` (a :class:`FaultPolicy`) bounds each sample with a timeout
    and bounded retries; samples that still fail land in the manifest as
    ``status: "failed"`` records with a structured ``error`` instead of
    killing their siblings. ``resume=True`` treats cached failed records
    as misses, re-running only failed or missing grid points. A campaign
    whose quarantined failures exceed ``policy.max_failures`` raises
    :class:`CampaignAborted` (completed samples stay cached).

    ``observe`` (implied by ``trace_path``) runs every sample inside its
    own obs session: samples carry a ``"metrics"`` snapshot, the manifest
    gains the campaign-wide merged snapshot under ``"metrics"``, and —
    when ``trace_path`` is given — a JSONL trace is written combining
    campaign-level phase spans with each sample's spans and events
    (labelled ``sample=<index>``). The deterministic fingerprint covers
    only (index, seed, config, result, status), so observed and
    unobserved runs of the same campaign fingerprint identically.

    ``batch=True`` routes pending samples through the experiment's
    ``batch_fn`` sample-axis hook (if it defines one): whole groups of
    grid points run as one stacked simulation in this process, with
    bit-identical results and an unchanged manifest fingerprint. Groups
    whose batch call fails fall back to the ordinary fault-tolerant
    per-sample path (retries, timeouts, quarantine all intact); caching
    and resume behave exactly as in per-sample runs. Observed runs skip
    batching — per-sample obs isolation needs per-sample execution.

    ``control`` (a :class:`CampaignControl`) adds an external control
    surface: ``on_record`` streams every finished record out of the run
    as it checkpoints, and ``should_cancel`` cooperatively interrupts
    the campaign (:class:`CampaignCancelled`) between samples, leaving
    it resumable. Neither hook can change what a sample computes, so the
    deterministic fingerprint is unaffected.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(experiment, str):
        experiment = get_experiment(experiment)
    observe = observe or trace_path is not None
    policy = NO_RETRY if policy is None else policy

    campaign_payload = None
    sample_obs: dict[int, dict] = {}
    with ExitStack() as stack:
        session = stack.enter_context(obs.isolated(enabled=True)) if observe else None
        campaign_timer = PhaseTimer(span_prefix="campaign")
        with campaign_timer.phase("grid"):
            if isinstance(grid, str):
                grid_label, configs = grid, experiment.grids(grid)
            else:
                grid_label, configs = "custom", list(grid)
            seeds = spawn_sample_seeds(root_seed, len(configs))
            code = code_fingerprint(experiment.sample_fn, experiment.version)

        cache = ResultCache(cache_dir) if cache_dir is not None else None
        records: dict[int, dict] = {}
        pending: list[tuple[int, dict, int, str]] = []
        with campaign_timer.phase("cache_scan"):
            for index, (config, seed) in enumerate(zip(configs, seeds)):
                key = sample_key(experiment.name, config, seed, code)
                hit = cache.get(experiment.name, key) if cache is not None else None
                if hit is not None and resume and hit.get("status") != "ok":
                    hit = None  # resume: quarantined points run again
                if hit is not None:
                    hit = dict(hit)
                    hit["cached"] = True
                    if not observe:
                        # Keep unobserved manifests free of stale metrics
                        # from an earlier observed run that warmed the cache.
                        hit.pop("metrics", None)
                    records[index] = hit
                else:
                    pending.append((index, config, seed, key))

        keys = {index: key for index, _, _, key in pending}
        if control is not None and control.on_record is not None:
            # Stream cache hits too (grid order): a resumed job's live
            # tail replays completed samples before fresh ones arrive.
            for index in sorted(records):
                control.on_record(records[index])

        def checkpoint(record: dict) -> None:
            """Stream one finished record into memory and the cache."""
            blob = record.pop("obs", None)
            if blob is not None:
                sample_obs[record["index"]] = blob
            records[record["index"]] = record
            if cache is not None:
                cache.put(experiment.name, keys[record["index"]], record)
            if control is not None and control.on_record is not None:
                control.on_record(record)

        def check_cancel() -> None:
            if (
                control is not None
                and control.should_cancel is not None
                and control.should_cancel()
            ):
                raise CampaignCancelled(
                    experiment.name, len(records), len(configs)
                )

        fresh_failures = 0

        def quarantine(record: dict) -> None:
            nonlocal fresh_failures
            fresh_failures += 1
            error = record.get("error") or {}
            if obs.OBS.enabled:
                obs.OBS.metrics.inc(
                    "campaign_failures_total",
                    experiment=experiment.name,
                    kind=error.get("kind", "unknown"),
                )
            obs.event(
                "error", "harness.campaign", "sample_failed",
                index=record["index"], attempts=record["attempts"],
                kind=error.get("kind"),
            )
            checkpoint(record)
            if (
                policy.max_failures is not None
                and fresh_failures > policy.max_failures
            ):
                raise CampaignAborted(
                    experiment.name, fresh_failures, policy.max_failures
                )

        start = time.perf_counter()
        with campaign_timer.phase("execute"):
            if (
                pending
                and batch
                and experiment.batch_fn is not None
                and not observe
            ):
                pending = _run_batched(experiment, pending, checkpoint, check_cancel)
            supervised = policy.timeout_s is not None or (
                workers > 1 and len(pending) > 1
            )
            if pending and supervised:
                _run_supervised(
                    experiment, pending, observe, policy,
                    min(workers, len(pending)), checkpoint, quarantine,
                    check_cancel,
                )
            elif pending:
                _run_inline(
                    experiment, pending, observe, policy, checkpoint, quarantine,
                    check_cancel,
                )
        wall_s = time.perf_counter() - start

        with campaign_timer.phase("finalize"):
            ordered = [records[index] for index in range(len(configs))]
            failed = sum(1 for r in ordered if r.get("status") != "ok")
        manifest = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "experiment": experiment.name,
            "grid": grid_label,
            "root_seed": root_seed,
            "workers": workers,
            "code": code,
            "totals": {
                "samples": len(ordered),
                "cached": sum(1 for r in ordered if r["cached"]),
                "failed": failed,
                "wall_s": round(wall_s, 6),
            },
            "campaign_timings": campaign_timer.as_dict(),
            "samples": ordered,
        }
        if observe:
            manifest["metrics"] = obs.merge_snapshots(
                r["metrics"] for r in ordered if r.get("metrics")
            )
        if session is not None:
            campaign_payload = session.collect()

    path = None
    if manifest_path is not None:
        path = write_manifest(manifest_path, manifest)
    if trace_path is not None:
        _write_campaign_trace(
            trace_path, experiment.name, grid_label, root_seed, workers,
            campaign_payload, sample_obs, manifest.get("metrics"),
        )
    return CampaignResult(
        experiment=experiment.name,
        grid=grid_label,
        root_seed=root_seed,
        workers=workers,
        records=[SampleRecord.from_dict(r) for r in ordered],
        manifest=manifest,
        manifest_path=path,
    )


def _write_campaign_trace(
    trace_path: str | Path,
    experiment: str,
    grid_label: str,
    root_seed: int,
    workers: int,
    campaign_payload: dict | None,
    sample_obs: dict[int, dict],
    merged_metrics: dict | None,
) -> Path:
    """Assemble the combined campaign trace and write it as JSONL.

    Campaign-level spans are labelled ``scope=campaign``; each sample's
    spans/events gain a ``sample=<index>`` label, which the Chrome-trace
    exporter maps to one lane per sample. The trace's metrics snapshot
    folds the runner's own counters (retries, quarantines) into the
    merged per-sample metrics.
    """
    metrics = merged_metrics
    if campaign_payload is not None:
        metrics = obs.merge_snapshots(
            snap for snap in (merged_metrics, campaign_payload["metrics"]) if snap
        )
    payload = {"spans": [], "events": [], "metrics": metrics}
    if campaign_payload is not None:
        for span in campaign_payload["spans"]:
            span["labels"] = {**span.get("labels", {}), "scope": "campaign"}
            payload["spans"].append(span)
        payload["events"].extend(campaign_payload["events"])
    for index in sorted(sample_obs):
        blob = sample_obs[index]
        for span in blob["spans"]:
            span["labels"] = {**span.get("labels", {}), "sample": index}
            payload["spans"].append(span)
        for evt in blob["events"]:
            evt["payload"] = {**evt.get("payload", {}), "sample": index}
            payload["events"].append(evt)
    meta = {
        "experiment": experiment,
        "grid": grid_label,
        "root_seed": root_seed,
        "workers": workers,
        "samples_traced": len(sample_obs),
    }
    return obs.write_trace(trace_path, payload, meta=meta)
