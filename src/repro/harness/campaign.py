"""The campaign engine: shard an experiment grid across a worker pool.

Determinism contract: a campaign's results are a pure function of
(experiment, grid, root seed). Every sample's seed is spawned up front
in grid order (:mod:`repro.harness.seeding`), every sample runs in its
own process-safe function call with no shared mutable state, and records
are re-assembled by grid index — so ``workers=1`` and ``workers=16``
produce byte-identical deterministic manifests (see
:func:`repro.harness.manifest.manifest_fingerprint`). The on-disk cache
and worker pool only change *when* a sample's record materializes, never
*what* it contains.

Experiments register a :class:`CampaignExperiment` (usually at module
import, see :mod:`repro.experiments.campaigns`); pool workers re-import
the defining module by name, so registration must be an import side
effect of that module.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.harness.cache import ResultCache, code_fingerprint, sample_key
from repro.harness.manifest import (
    MANIFEST_SCHEMA_VERSION,
    manifest_fingerprint,
    write_manifest,
)
from repro.harness.seeding import spawn_sample_seeds
from repro.harness.timing import PhaseTimer

#: Sample functions take (config, seed, timer) and return a JSON-able dict.
SampleFn = Callable[[dict, int, PhaseTimer], dict]


@dataclass(frozen=True)
class CampaignExperiment:
    """One runnable experiment grid.

    ``grids`` maps a preset name (``"smoke"``, ``"default"``, ``"full"``
    — whatever the experiment defines) to a list of JSON-able config
    dicts, one per sample. ``version`` participates in the cache key;
    bump it when a dependency of the sample function changes semantics
    without touching the defining module's source.
    """

    name: str
    sample_fn: SampleFn
    grids: Callable[[str], list[dict]]
    version: str = "1"
    describe: str = ""
    summarize: Callable[["CampaignResult"], str] | None = None

    @property
    def module(self) -> str:
        """Module whose import registers this experiment (for workers)."""
        return self.sample_fn.__module__


@dataclass(frozen=True)
class SampleRecord:
    """One completed grid point, exactly as it appears in the manifest."""

    index: int
    seed: int
    config: dict
    result: dict
    wall_time_s: float
    worker: str
    cached: bool
    timings: dict

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "config": self.config,
            "result": self.result,
            "wall_time_s": self.wall_time_s,
            "worker": self.worker,
            "cached": self.cached,
            "timings": self.timings,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SampleRecord":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__})


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    experiment: str
    grid: str
    root_seed: int
    workers: int
    records: list[SampleRecord]
    manifest: dict
    manifest_path: Path | None = None

    @property
    def results(self) -> list[dict]:
        """Per-sample result dicts, in grid order."""
        return [record.result for record in self.records]

    @property
    def fingerprint(self) -> str:
        """Scheduling-independent hash of the campaign's results."""
        return manifest_fingerprint(self.manifest)


# --------------------------------------------------------------- registry
_REGISTRY: dict[str, CampaignExperiment] = {}


def register_experiment(experiment: CampaignExperiment) -> CampaignExperiment:
    """Register (or re-register, idempotently) a campaign experiment."""
    _REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> CampaignExperiment:
    """Look up a registered experiment by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown campaign experiment {name!r}; registered: {known}"
        ) from None


def list_experiments() -> list[CampaignExperiment]:
    """All registered experiments, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# --------------------------------------------------------------- execution
def _execute_sample(
    experiment: CampaignExperiment, index: int, config: dict, seed: int
) -> dict:
    """Run one grid point; returns its manifest record as a dict."""
    timer = PhaseTimer()
    start = time.perf_counter()
    result = experiment.sample_fn(dict(config), seed, timer)
    wall = time.perf_counter() - start
    return {
        "index": index,
        "seed": seed,
        "config": config,
        "result": result,
        "wall_time_s": round(wall, 6),
        "worker": multiprocessing.current_process().name,
        "cached": False,
        "timings": timer.as_dict(),
    }


def _pool_worker(task: tuple[str, str, int, dict, int]) -> dict:
    """Pool entry point: re-import the registering module, then run."""
    module, name, index, config, seed = task
    importlib.import_module(module)
    return _execute_sample(get_experiment(name), index, config, seed)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (where available) inherits the parent's imports, so even
    # experiments registered from non-importable modules (tests, benches)
    # reach the workers; spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_campaign(
    experiment: str | CampaignExperiment,
    grid: str | list[dict] = "default",
    root_seed: int = 0,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    manifest_path: str | Path | None = None,
) -> CampaignResult:
    """Run every grid point of ``experiment``; return records + manifest.

    ``grid`` is a preset name resolved via the experiment's ``grids``
    hook, or an explicit list of config dicts (recorded as ``"custom"``).
    ``workers=1`` runs inline in this process; ``workers>1`` shards the
    non-cached points over a multiprocessing pool. Results are identical
    either way. ``cache_dir=None`` disables the on-disk cache.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(experiment, str):
        experiment = get_experiment(experiment)

    campaign_timer = PhaseTimer()
    with campaign_timer.phase("grid"):
        if isinstance(grid, str):
            grid_label, configs = grid, experiment.grids(grid)
        else:
            grid_label, configs = "custom", list(grid)
        seeds = spawn_sample_seeds(root_seed, len(configs))
        code = code_fingerprint(experiment.sample_fn, experiment.version)

    cache = ResultCache(cache_dir) if cache_dir is not None else None
    records: dict[int, dict] = {}
    pending: list[tuple[int, dict, int, str]] = []
    with campaign_timer.phase("cache_scan"):
        for index, (config, seed) in enumerate(zip(configs, seeds)):
            key = sample_key(experiment.name, config, seed, code)
            hit = cache.get(experiment.name, key) if cache is not None else None
            if hit is not None:
                hit = dict(hit)
                hit["cached"] = True
                records[index] = hit
            else:
                pending.append((index, config, seed, key))

    start = time.perf_counter()
    with campaign_timer.phase("execute"):
        if workers == 1 or len(pending) <= 1:
            fresh = [
                _execute_sample(experiment, index, config, seed)
                for index, config, seed, _ in pending
            ]
        else:
            tasks = [
                (experiment.module, experiment.name, index, config, seed)
                for index, config, seed, _ in pending
            ]
            with _pool_context().Pool(processes=min(workers, len(tasks))) as pool:
                fresh = list(pool.imap_unordered(_pool_worker, tasks, chunksize=1))
    wall_s = time.perf_counter() - start

    with campaign_timer.phase("finalize"):
        keys = {index: key for index, _, _, key in pending}
        for record in fresh:
            records[record["index"]] = record
            if cache is not None:
                cache.put(experiment.name, keys[record["index"]], record)
        ordered = [records[index] for index in range(len(configs))]
    manifest = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "experiment": experiment.name,
        "grid": grid_label,
        "root_seed": root_seed,
        "workers": workers,
        "code": code,
        "totals": {
            "samples": len(ordered),
            "cached": sum(1 for r in ordered if r["cached"]),
            "wall_s": round(wall_s, 6),
        },
        "campaign_timings": campaign_timer.as_dict(),
        "samples": ordered,
    }

    path = None
    if manifest_path is not None:
        path = write_manifest(manifest_path, manifest)
    return CampaignResult(
        experiment=experiment.name,
        grid=grid_label,
        root_seed=root_seed,
        workers=workers,
        records=[SampleRecord.from_dict(r) for r in ordered],
        manifest=manifest,
        manifest_path=path,
    )
