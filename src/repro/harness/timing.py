"""Per-phase wall-time counters for campaign samples.

Every sample function receives a :class:`PhaseTimer`; whatever phases it
brackets (``with timer.phase("simulate"): ...``) land in the sample's
manifest entry, so a finished manifest doubles as a coarse profile of
where campaign time went without a separate profiling run.

The timer is a thin facade over :func:`repro.obs.timed_span`: the span
machinery does the clock bracketing (one implementation of timing in the
whole codebase), and when the observability session is enabled the same
phases additionally appear as first-class spans in the captured trace —
the manifest's ``timings`` dict stays byte-identical either way.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs import timed_span


@dataclass
class PhaseTimer:
    """Accumulates named wall-time phases: ``{name: {calls, total_s}}``."""

    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Span-name prefix used when the obs session records these phases.
    span_prefix: str = "phase"

    @contextmanager
    def phase(self, name: str):
        """Time one bracketed phase; re-entering a name accumulates."""
        open_span = timed_span(f"{self.span_prefix}.{name}")
        span = open_span.__enter__()
        try:
            yield self
        finally:
            # Close the span by hand so the duration is readable here —
            # on the exception path as well as the happy one.
            open_span.__exit__(None, None, None)
            slot = self.phases.setdefault(name, {"calls": 0, "total_s": 0.0})
            slot["calls"] += 1
            slot["total_s"] += span.duration_s

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-ready copy with rounded totals (stable manifest diffs)."""
        return {
            name: {"calls": slot["calls"], "total_s": round(slot["total_s"], 6)}
            for name, slot in self.phases.items()
        }
