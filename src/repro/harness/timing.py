"""Per-phase wall-time counters for campaign samples.

Every sample function receives a :class:`PhaseTimer`; whatever phases it
brackets (``with timer.phase("simulate"): ...``) land in the sample's
manifest entry, so a finished manifest doubles as a coarse profile of
where campaign time went without a separate profiling run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PhaseTimer:
    """Accumulates named wall-time phases: ``{name: {calls, total_s}}``."""

    phases: dict[str, dict[str, float]] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str):
        """Time one bracketed phase; re-entering a name accumulates."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            slot = self.phases.setdefault(name, {"calls": 0, "total_s": 0.0})
            slot["calls"] += 1
            slot["total_s"] += elapsed

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-ready copy with rounded totals (stable manifest diffs)."""
        return {
            name: {"calls": slot["calls"], "total_s": round(slot["total_s"], 6)}
            for name, slot in self.phases.items()
        }
