"""Campaign run manifests: the audit trail of a sweep.

A manifest is one JSON document describing everything needed to audit or
reproduce a campaign:

.. code-block:: text

    {
      "schema_version": 3,
      "experiment":  "monte-carlo",
      "grid":        "smoke",
      "root_seed":   17,
      "workers":     4,
      "code":        "<fingerprint>",
      "totals":      {"samples": N, "cached": C, "failed": F, "wall_s": ...},
      "campaign_timings": {"grid": {...}, "execute": {...}, ...},
      "samples": [
        {"index": 0, "seed": ..., "config": {...}, "result": {...},
         "status": "ok", "attempts": 1,
         "wall_time_s": ..., "worker": "...", "cached": false,
         "timings": {"simulate": {"calls": 1, "total_s": ...}}},
        ...
      ]
    }

Schema version 2 added per-sample fault-tolerance fields: ``status``
(``"ok"`` or ``"failed"``), ``attempts`` (retries count), an ``error``
object on quarantined samples (``kind``/``type``/``message``), and the
``failed`` total. Schema version 3 added the optional per-sample
``oracles`` block — the property-oracle verdict
(:mod:`repro.harness.oracles`) lifted out of the sample result by the
runner; absent on samples whose experiment runs no oracles.

``index``, ``seed``, ``config``, ``result``, ``status`` and ``oracles``
are deterministic — identical for the same (experiment, grid, root seed)
at any worker count, with retries re-running on the sample's original
seed. ``wall_time_s``, ``worker``, ``cached``, ``attempts``, ``error``
and the timing counters are provenance, not results;
:func:`manifest_fingerprint` hashes only the deterministic subset, which
is what the serial-vs-parallel equivalence guarantee (and its regression
test) is stated over.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.cache import stable_hash

MANIFEST_SCHEMA_VERSION = 3

#: Per-sample fields that identify the *result*, not the run that made it.
DETERMINISTIC_SAMPLE_FIELDS = (
    "index", "seed", "config", "result", "status", "oracles",
)

#: Defaults for deterministic fields older schemas did not write.
_FIELD_DEFAULTS = {"status": "ok", "oracles": None}


def deterministic_view(manifest: dict) -> dict:
    """The scheduling-independent subset of a manifest.

    Tolerates older-schema manifests (no per-sample ``status`` or
    ``oracles``) by filling the fields' defaults.
    """
    return {
        "schema_version": manifest["schema_version"],
        "experiment": manifest["experiment"],
        "grid": manifest["grid"],
        "root_seed": manifest["root_seed"],
        "samples": [
            {
                field: sample.get(field, _FIELD_DEFAULTS[field])
                if field in _FIELD_DEFAULTS else sample[field]
                for field in DETERMINISTIC_SAMPLE_FIELDS
            }
            for sample in manifest["samples"]
        ],
    }


def manifest_fingerprint(manifest: dict) -> str:
    """Stable hash of the deterministic subset of ``manifest``.

    Two campaigns agree on this fingerprint iff they produced identical
    results sample-for-sample — regardless of worker count, scheduling
    order, cache hits, retries, or how long anything took.
    """
    return stable_hash(deterministic_view(manifest))


def status_counts(manifest: dict) -> dict:
    """Per-sample totals of a manifest, summarized for status queries.

    Built from the per-sample records (schema v2+ ``status`` fields, with
    v1 defaults), not the ``totals`` block, so it also works on manifests
    assembled by hand or truncated by an older writer. This is what the
    campaign service's ``GET /jobs/<id>`` reports once a manifest exists.
    """
    samples = manifest.get("samples", [])
    ok = sum(1 for s in samples if s.get("status", "ok") == "ok")
    return {
        "samples": len(samples),
        "ok": ok,
        "failed": len(samples) - ok,
        "cached": sum(1 for s in samples if s.get("cached")),
        "oracle_checked": sum(1 for s in samples if s.get("oracles") is not None),
    }


def write_manifest(path: str | Path, manifest: dict) -> Path:
    """Write ``manifest`` as stable, human-diffable JSON; returns path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_manifest(path: str | Path) -> dict:
    """Load a manifest written by :func:`write_manifest`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
