"""Chaos campaign experiment: fault injection against the harness itself.

A self-contained experiment (like :mod:`repro.harness.synthetic`) whose
samples crash, hang, flake, or hard-exit **by config** — the test rig
for the campaign engine's fault policy (timeout, retries, quarantine,
resume). The injected faults never touch the sample's *result*: the
deterministic payload is drawn fresh from the sample's seed after the
fault block, so a chaotic-but-survived campaign fingerprints identically
to one that never faulted.

Fault spec — an optional ``"fault"`` object inside a sample's config::

    {"mode": "crash",        # raise RuntimeError
             "hard-crash",   # os._exit(41): kill the worker process
             "hang",         # sleep fault["hang_s"] (default 3600 s)
             "flaky",        # fail the first fault["fails"] attempts
             "interrupt",    # raise KeyboardInterrupt
     "armed_file": "path",   # fault fires only while this file exists
     "dir": "path",          # flaky: directory for attempt markers
     "fails": 2,             # flaky: attempts that fail before success
     "hang_s": 3600.0}

``armed_file`` models "the experiment is broken, then someone fixes it":
create the file, run the campaign (failures are quarantined), delete the
file, re-run with ``resume=True`` — the grid completes and matches a
clean run. ``flaky`` models transient failures: attempt counts persist
in marker files under ``dir`` (keyed by the config's ``"i"``), so the
sample succeeds once the harness has retried it ``fails`` times —
regardless of whether those retries happened serially, in a pool, or
across a kill/resume boundary. Fault state lives on disk, not in the
config, precisely so the cache key (and the fingerprint) of a grid point
is the same before and after the "fix".
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.harness.campaign import CampaignExperiment, register_experiment
from repro.harness.timing import PhaseTimer


def _fault_armed(fault: dict) -> bool:
    armed_file = fault.get("armed_file")
    return armed_file is None or Path(armed_file).exists()


def _flake_should_fail(fault: dict, config: dict) -> bool:
    """Count this attempt in the marker file; fail while under quota."""
    directory = Path(fault["dir"])
    directory.mkdir(parents=True, exist_ok=True)
    marker = directory / f"sample-{config.get('i', 0)}.attempts"
    attempts = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(attempts + 1))
    return attempts < int(fault.get("fails", 1))


def chaos_sample(config: dict, seed: int, timer: PhaseTimer) -> dict:
    """Optionally misbehave per ``config["fault"]``, then draw the result."""
    fault = dict(config.get("fault") or {})
    mode = fault.get("mode")
    if mode and _fault_armed(fault):
        if mode == "crash":
            raise RuntimeError("chaos: injected crash")
        if mode == "hard-crash":
            os._exit(41)
        if mode == "interrupt":
            raise KeyboardInterrupt("chaos: injected interrupt")
        if mode == "hang":
            with timer.phase("hang"):
                time.sleep(float(fault.get("hang_s", 3600.0)))
        if mode == "flaky" and _flake_should_fail(fault, config):
            raise RuntimeError("chaos: injected flake")
    sleep_s = float(config.get("sleep_s", 0.0))
    if sleep_s > 0.0:
        with timer.phase("sleep"):
            time.sleep(sleep_s)
    with timer.phase("draw"):
        rng = np.random.default_rng(seed)
        values = rng.normal(
            loc=float(config.get("loc", 0.0)), size=int(config.get("n", 256))
        )
    return {"mean": float(np.mean(values)), "std": float(np.std(values))}


def chaos_grid(preset: str) -> list[dict]:
    """``smoke``: 8 clean points; ``ci-flaky``: 12 points, every third
    flakes once (markers under ``.chaos-markers/``) and each sleeps long
    enough that a mid-run kill actually interrupts the sweep."""
    if preset in ("smoke", "default"):
        return [{"i": i, "n": 256, "loc": float(i)} for i in range(8)]
    if preset == "ci-flaky":
        grid = []
        for i in range(12):
            config: dict = {"i": i, "n": 512, "loc": float(i % 5), "sleep_s": 0.4}
            if i % 3 == 0:
                config["fault"] = {
                    "mode": "flaky", "fails": 1, "dir": ".chaos-markers",
                }
            grid.append(config)
        return grid
    raise ValueError(f"unknown chaos grid preset {preset!r}")


CHAOS = register_experiment(
    CampaignExperiment(
        name="chaos",
        sample_fn=chaos_sample,
        grids=chaos_grid,
        describe="fault-injection self-test: crash/hang/flake by config",
        presets=("smoke", "default", "ci-flaky"),
    )
)
