"""Deterministic parallel campaign runner.

The experiment drivers under :mod:`repro.experiments` each answer one
paper question at one scenario point; the studies that back the paper's
sweep-style evidence (Fig. 5 Monte Carlo, comm-availability loss sweep)
run hundreds of points. This package shards any such grid across a
``multiprocessing`` worker pool while keeping the results *bit-identical*
regardless of worker count or scheduling order:

- every sample owns an independent RNG stream derived up-front via
  :meth:`numpy.random.SeedSequence.spawn` (:mod:`repro.harness.seeding`);
- completed points are cached on disk under a stable hash of
  (experiment, config, seed, code version) (:mod:`repro.harness.cache`);
- each run emits a JSON manifest recording per-sample seed, config,
  wall time, worker id and phase timings (:mod:`repro.harness.manifest`),
  so any single sample can be reproduced in isolation and the manifest
  doubles as a coarse profile;
- execution is fault-tolerant: records are checkpointed into the cache
  as they complete, a :class:`~repro.harness.campaign.FaultPolicy`
  bounds samples with timeouts and retries, failed samples are
  quarantined as ``status: "failed"`` manifest records instead of
  killing their siblings, and ``resume=True`` re-runs only failed or
  missing grid points;
- the platform hunts its own bugs: :mod:`repro.harness.oracles` is the
  property-oracle suite every simulation must satisfy, and
  :mod:`repro.harness.fuzz` generates seeded random scenarios, runs
  them through the campaign machinery against the oracles, and shrinks
  any violation to a minimal reproducing scenario file.

Entry points: :func:`repro.harness.campaign.run_campaign` and the
``python -m repro campaign <experiment>`` CLI (including
``campaign fuzz --profile {smoke,default,hostile} --count N``).
"""

from repro.harness.campaign import (
    CampaignAborted,
    CampaignExperiment,
    CampaignResult,
    FaultPolicy,
    SampleRecord,
    get_experiment,
    list_experiments,
    register_experiment,
    run_campaign,
)
from repro.harness.cache import ResultCache, code_fingerprint, stable_hash
from repro.harness.manifest import (
    MANIFEST_SCHEMA_VERSION,
    manifest_fingerprint,
    write_manifest,
)
from repro.harness.oracles import OracleReport, Violation, run_scenario_oracles
from repro.harness.seeding import spawn_sample_seeds
from repro.harness.timing import PhaseTimer

__all__ = [
    "CampaignAborted",
    "CampaignExperiment",
    "CampaignResult",
    "FaultPolicy",
    "MANIFEST_SCHEMA_VERSION",
    "OracleReport",
    "PhaseTimer",
    "ResultCache",
    "SampleRecord",
    "Violation",
    "code_fingerprint",
    "get_experiment",
    "list_experiments",
    "manifest_fingerprint",
    "register_experiment",
    "run_campaign",
    "run_scenario_oracles",
    "spawn_sample_seeds",
    "stable_hash",
    "write_manifest",
]
