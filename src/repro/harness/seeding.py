"""Per-sample RNG streams that survive sharding.

Deriving sample seeds as ``root_seed + i`` gives overlapping or
correlated streams, and seeding from "whatever the worker drew last"
makes results depend on scheduling order. Instead the campaign parent
spawns one :class:`numpy.random.SeedSequence` child per grid point *up
front, in grid order*; child ``i`` is fully determined by
``(root_seed, spawn_key=(i,))``, so the same grid at the same root seed
yields the same per-sample streams whether the campaign runs on one
worker or sixteen, and independent of which worker ends up executing
which sample.
"""

from __future__ import annotations

import numpy as np


def spawn_sample_seeds(root_seed: int, n: int) -> list[int]:
    """Derive ``n`` independent integer seeds from ``root_seed``.

    Returns one 63-bit integer per sample, drawn from the sample's own
    spawned :class:`~numpy.random.SeedSequence` child. The integer form
    (rather than the SeedSequence itself) keeps manifests JSON-friendly
    and lets any experiment that takes ``seed: int`` reproduce a single
    sample directly from its manifest entry.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} sample seeds")
    children = np.random.SeedSequence(root_seed).spawn(n)
    # Mask to 63 bits so the seed round-trips through JSON readers that
    # only guarantee signed-64 integers.
    return [int(child.generate_state(1, dtype=np.uint64)[0] >> 1) for child in children]


def sample_seed(root_seed: int, index: int) -> int:
    """The seed :func:`spawn_sample_seeds` assigns to grid point ``index``.

    ``SeedSequence.spawn`` children are keyed by position alone, so the
    seed of sample ``i`` does not depend on how many other samples the
    campaign contains — this is what makes a single manifest entry
    reproducible without re-deriving the whole grid.
    """
    return spawn_sample_seeds(root_seed, index + 1)[index]
