"""The registered ``fuzz`` campaign: generated scenarios vs. the oracles.

Each grid point regenerates its scenario *inside* the sample function
from the harness-spawned per-sample seed, so a scenario is reproducible
from its manifest record alone: ``ScenarioGenerator(record.seed)
.generate(record.config["profile"])`` is the exact input that ran (for
``kind="swarm"`` grid points, ``.generate_swarm(...)`` against the
swarm-tasking oracle suite instead). The
root seed varies the whole corpus; the grid config carries only the
profile name (plus an optional scripted-chaos block for self-tests), so
cache keys and fingerprints stay small and stable.

Grid presets are ``"<profile>"`` or ``"<profile>:<count>"`` —
``"smoke"``, ``"smoke:200"``, ``"hostile:1000"``.

:func:`run_fuzz` is the full loop the CLI drives: run the campaign,
collect oracle violations and quarantined crashes, shrink every
violating scenario (:mod:`repro.harness.fuzz.shrink`) and write each
minimized reproducer to ``<artifacts>/repro_<seed>.json`` — a standalone
scenario file that replays the failure via
``python -m repro scenario replay``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.campaign import (
    CampaignExperiment,
    CampaignResult,
    FaultPolicy,
    SampleRecord,
    register_experiment,
    run_campaign,
)
from repro.harness.fuzz.generator import (
    ScenarioGenerator,
    get_profile,
    scenario_to_json,
)
from repro.harness.fuzz.shrink import ShrinkResult, shrink_scenario
from repro.harness.timing import PhaseTimer

#: Scenarios per profile when the preset names no explicit count.
DEFAULT_COUNTS = {"smoke": 25, "default": 50, "hostile": 100}


def sample_scenario(config: dict, seed: int) -> dict:
    """The scenario a fuzz grid point runs — pure function of its record.

    ``config["scenario"]`` (explicit scenario, used when re-checking a
    minimized reproducer through the campaign machinery) wins over
    generation; ``config["chaos"]`` is merged in either way, which is
    how the self-test grid arms a scripted engine bug.
    """
    if "scenario" in config:
        scenario = json.loads(json.dumps(config["scenario"]))
    else:
        scenario = ScenarioGenerator(seed).generate(config["profile"])
    if "chaos" in config:
        scenario["chaos"] = json.loads(json.dumps(config["chaos"]))
    return scenario


def swarm_scenario(config: dict, seed: int) -> dict:
    """The swarm config a ``kind="swarm"`` grid point runs.

    Same contract as :func:`sample_scenario`: an explicit
    ``config["scenario"]`` (replaying a saved reproducer) wins over
    generation from the record seed.
    """
    if "scenario" in config:
        return json.loads(json.dumps(config["scenario"]))
    return ScenarioGenerator(seed).generate_swarm(config["profile"])


def fuzz_sample(config: dict, seed: int, timer: PhaseTimer) -> dict:
    """Generate one scenario, run the oracle suite, return the verdict."""
    # Import here as well as module level: supervised pool workers
    # re-import this module by name and need the runner regardless of
    # what the parent had loaded.
    from repro.harness.oracles import run_scenario_oracles, run_swarm_oracles

    if config.get("kind") == "swarm":
        with timer.phase("generate"):
            scenario = swarm_scenario(config, seed)
        with timer.phase("oracles"):
            report = run_swarm_oracles(scenario)
        return {
            "profile": config.get("profile"),
            "kind": "swarm",
            "k_leaders": scenario["k_leaders"],
            "rho": scenario["rho"],
            "n_pois": scenario["n_pois"],
            "n_faults": len(scenario.get("faults", [])),
            "oracles": report.to_dict(),
        }
    with timer.phase("generate"):
        scenario = sample_scenario(config, seed)
    with timer.phase("oracles"):
        report = run_scenario_oracles(scenario)
    return {
        "profile": config.get("profile"),
        "n_uavs": len(scenario.get("uavs", [])),
        "n_faults": len(scenario.get("faults", [])),
        "n_attacks": len(scenario.get("attacks", [])),
        "engine": scenario.get("engine"),
        "oracles": report.to_dict(),
    }


def fuzz_grid(preset: str) -> list[dict]:
    """Resolve ``"<profile>"`` / ``"<profile>:<count>"`` into grid configs.

    Profiles with a non-zero ``swarm_share`` dedicate that trailing
    fraction of the grid to swarm-tasking scenarios (``kind="swarm"``);
    the SAR prefix keeps its case indices, so adding swarm coverage
    never re-seeds the existing corpus.
    """
    name, _, count_text = preset.partition(":")
    profile = get_profile(name)  # raises KeyError for unknown profiles
    if count_text:
        count = int(count_text)
        if count < 1:
            raise ValueError(f"fuzz grid {preset!r}: count must be >= 1")
    else:
        count = DEFAULT_COUNTS[profile.name]
    configs = [{"profile": profile.name, "case": index} for index in range(count)]
    n_swarm = int(count * profile.swarm_share)
    for config in configs[count - n_swarm :]:
        config["kind"] = "swarm"
    return configs


def summarize_fuzz(result: CampaignResult) -> str:
    """One-paragraph human summary of a fuzz campaign's oracle verdicts."""
    records = result.records
    violating = [r for r in records if r.oracles and not r.oracles["passed"]]
    crashed = [r for r in records if r.status != "ok"]
    checked = sum(len(r.oracles["checked"]) for r in records if r.oracles)
    lines = [
        f"fuzz[{result.grid}]: {len(records)} scenarios, "
        f"{checked} oracle checks, {len(violating)} violating, "
        f"{len(crashed)} crashed",
    ]
    for record in violating:
        oracles = ", ".join(
            sorted({v["oracle"] for v in record.oracles["violations"]})
        )
        lines.append(f"  seed {record.seed}: VIOLATED {oracles}")
    for record in crashed:
        error = record.error or {}
        lines.append(
            f"  seed {record.seed}: CRASHED "
            f"{error.get('type', '?')}: {error.get('message', '?')}"
        )
    return "\n".join(lines)


FUZZ_EXPERIMENT = register_experiment(
    CampaignExperiment(
        name="fuzz",
        sample_fn=fuzz_sample,
        grids=fuzz_grid,
        version="1",
        describe=(
            "procedurally generated scenarios checked against the "
            "property-oracle suite (profiles: smoke, default, hostile; "
            "preset 'profile' or 'profile:count')"
        ),
        summarize=summarize_fuzz,
        presets=("smoke", "default", "hostile"),
    )
)


@dataclass
class FuzzOutcome:
    """A finished fuzzing run: campaign + violations + minimized repros."""

    campaign: CampaignResult
    #: Records whose oracle verdict failed (status still ``"ok"``).
    violations: list[SampleRecord] = field(default_factory=list)
    #: Quarantined records (generator or harness crash).
    crashes: list[SampleRecord] = field(default_factory=list)
    #: Seed → written minimized-reproducer path.
    repro_paths: dict[int, Path] = field(default_factory=dict)
    #: Seed → shrink result for each written reproducer.
    shrink_results: dict[int, ShrinkResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.crashes


def run_fuzz(
    profile: str = "default",
    count: int | None = None,
    root_seed: int = 0,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    manifest_path: str | Path | None = None,
    artifacts_dir: str | Path = "artifacts",
    chaos: dict | None = None,
    shrink: bool = True,
    max_shrink: int = 5,
    policy: FaultPolicy | None = None,
    resume: bool = False,
) -> FuzzOutcome:
    """Run a fuzzing campaign; shrink and save every violation found.

    ``chaos`` (a scenario ``"chaos"`` block) arms a scripted engine bug
    in every generated scenario — the intentionally-broken-engine path
    used to prove the loop catches, shrinks and reports failures. With
    it the grid is custom (chaos participates in configs, cache keys and
    the fingerprint); without it the preset-string grid keeps the
    documented deterministic fingerprint.

    At most ``max_shrink`` violations are shrunk (shrinking replays each
    scenario many times); the rest are still listed in the outcome.
    """
    preset = profile if count is None else f"{profile}:{count}"
    grid: str | list[dict] = preset
    if chaos is not None:
        grid = [dict(cfg, chaos=chaos) for cfg in fuzz_grid(preset)]
    result = run_campaign(
        FUZZ_EXPERIMENT,
        grid=grid,
        root_seed=root_seed,
        workers=workers,
        cache_dir=cache_dir,
        manifest_path=manifest_path,
        policy=policy,
        resume=resume,
    )
    outcome = FuzzOutcome(campaign=result)
    for record in result.records:
        if record.status != "ok":
            outcome.crashes.append(record)
        elif record.oracles and not record.oracles["passed"]:
            outcome.violations.append(record)
    if not shrink:
        return outcome
    for record in outcome.violations[:max_shrink]:
        if record.config.get("kind") == "swarm":
            # No shrinker speaks the swarm-config shape (yet); the raw
            # generated config is already small and replays the failure
            # via run_swarm_oracles, so save it as-is.
            scenario = swarm_scenario(record.config, record.seed)
            path = Path(artifacts_dir) / f"repro_{record.seed}.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(scenario_to_json(scenario), encoding="utf-8")
            outcome.repro_paths[record.seed] = path
            continue
        scenario = sample_scenario(record.config, record.seed)
        target = record.oracles["violations"][0]["oracle"]
        shrunk = shrink_scenario(scenario, target_oracle=target)
        path = Path(artifacts_dir) / f"repro_{record.seed}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(scenario_to_json(shrunk.config), encoding="utf-8")
        outcome.repro_paths[record.seed] = path
        outcome.shrink_results[record.seed] = shrunk
    return outcome
