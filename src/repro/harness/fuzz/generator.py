"""Seeded procedural scenario generator.

``ScenarioGenerator(seed).generate(profile)`` draws a complete scenario
config — world size, fleet mix, missions, weather, survivor count, fault
and attack scripts — from one :class:`numpy.random.Generator` stream, so
the whole scenario is a pure function of ``(seed, profile)``:

- same seed ⇒ byte-identical JSON (:meth:`ScenarioGenerator.generate_json`
  serialises with sorted keys), across processes and platforms;
- every emitted config round-trips through
  :func:`repro.scenario.load_scenario_json` and lints clean under
  :func:`repro.scenario.lint_scenario`;
- every drawn value is a plain Python scalar/list (no NumPy types), so
  the config survives JSON serialisation unchanged.

Profiles shape the distribution, not the mechanism: ``smoke`` is small
and fast enough for a per-PR CI gate, ``default`` covers the full fault
vocabulary, ``hostile`` pushes fleet size, weather, comm partitions and
spoofing attacks to the configured limits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

#: Fault vocabulary understood by :func:`repro.scenario.load_scenario`.
BASIC_FAULTS = (
    "battery_collapse",
    "gps_denial",
    "gps_spoof",
    "imu_failure",
    "motor_failure",
    "camera_degradation",
)
COMM_FAULTS = ("comm_blackout", "comm_degradation", "network_partition")


@dataclass(frozen=True)
class FuzzProfile:
    """Shape of the scenario distribution one fuzzing tier draws from."""

    name: str
    #: Inclusive fleet-size bounds.
    uavs: tuple[int, int]
    #: Simulated horizon bounds (seconds); rounded to a ``dt`` multiple.
    horizon_s: tuple[float, float]
    #: Candidate simulation step sizes.
    dt_choices: tuple[float, ...]
    #: Square world-side bounds (metres).
    area_m: tuple[float, float]
    #: Inclusive survivor-count bounds.
    persons: tuple[int, int]
    #: Maximum scripted faults per scenario (draw is uniform 0..max).
    max_faults: int
    #: Fault vocabulary this tier draws from.
    fault_types: tuple[str, ...]
    #: Maximum ros_spoofing attacks per scenario.
    max_attacks: int
    #: Probability a UAV gets a waypoint mission (else it idles at base).
    p_mission: float
    #: Probability the scenario carries an explicit weather section.
    p_environment: float
    #: Fraction of this tier's fuzz grid drawn as leader–follower swarm
    #: tasking scenarios (:meth:`ScenarioGenerator.generate_swarm`);
    #: ``0.0`` keeps the tier pure SAR-scenario fuzzing.
    swarm_share: float = 0.0
    #: Inclusive leader-count (K) bounds for drawn swarm scenarios.
    swarm_leaders: tuple[int, int] = (1, 4)
    #: Inclusive followers-per-leader (ρ) bounds.
    swarm_rho: tuple[int, int] = (1, 8)
    #: Inclusive PoI-workload bounds.
    swarm_pois: tuple[int, int] = (10, 120)
    #: Square world-side bounds (metres) for swarm scenarios.
    swarm_area_m: tuple[float, float] = (300.0, 900.0)
    #: Base link-loss bounds (geometry pushes loss to 1.0 out of range).
    swarm_loss: tuple[float, float] = (0.0, 0.5)
    #: Horizon bounds (seconds) for swarm scenarios.
    swarm_horizon_s: tuple[float, float] = (60.0, 180.0)
    #: Maximum scripted swarm faults (follower loss / leader demotion).
    swarm_max_faults: int = 3
    #: Probability the scenario carries a 3D ``obstacles`` block (routed
    #: missions + the ``planned_path_clearance`` oracle). The gate draw
    #: only happens when this is non-zero, so tiers that keep the default
    #: 0.0 preserve their existing draw sequences byte for byte.
    p_obstacles: float = 0.0


PROFILES: dict[str, FuzzProfile] = {
    profile.name: profile
    for profile in (
        FuzzProfile(
            name="smoke",
            uavs=(1, 4),
            horizon_s=(20.0, 40.0),
            dt_choices=(0.5,),
            area_m=(150.0, 400.0),
            persons=(0, 3),
            max_faults=2,
            fault_types=BASIC_FAULTS,
            max_attacks=0,
            p_mission=0.8,
            p_environment=0.4,
        ),
        FuzzProfile(
            name="default",
            uavs=(1, 16),
            horizon_s=(30.0, 90.0),
            dt_choices=(0.5,),
            area_m=(200.0, 800.0),
            persons=(0, 8),
            max_faults=4,
            fault_types=BASIC_FAULTS + COMM_FAULTS,
            max_attacks=1,
            p_mission=0.8,
            p_environment=0.5,
        ),
        FuzzProfile(
            name="hostile",
            uavs=(4, 64),
            horizon_s=(40.0, 120.0),
            dt_choices=(0.25, 0.5),
            area_m=(300.0, 1500.0),
            persons=(0, 16),
            max_faults=8,
            fault_types=BASIC_FAULTS + COMM_FAULTS,
            max_attacks=3,
            p_mission=0.9,
            p_environment=0.8,
            # A quarter of the hostile grid exercises the swarm tasking
            # protocol instead of the SAR engine (K/ρ sweeps under loss,
            # scripted follower deaths and leader demotions).
            swarm_share=0.25,
            swarm_leaders=(1, 4),
            swarm_rho=(1, 8),
            swarm_pois=(10, 120),
            swarm_loss=(0.0, 0.5),
            swarm_max_faults=3,
            # A third of hostile SAR scenarios fly an urban obstacle
            # field, exercising the planner and its clearance oracle.
            p_obstacles=0.35,
        ),
    )
}


def get_profile(name: str | FuzzProfile) -> FuzzProfile:
    """Resolve a profile by name (pass-through for profile objects)."""
    if isinstance(name, FuzzProfile):
        return name
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(
            f"unknown fuzz profile {name!r}; known profiles: {known}"
        ) from None


class ScenarioGenerator:
    """Deterministic scenario sampler: one RNG stream, consumed in order.

    Draw order is part of the format — every draw happens in a fixed
    sequence regardless of which branches fire, so two generators built
    from the same seed replay identical scenarios. (Conditional sections
    draw their gate first, then their contents only when the gate fires;
    that is still deterministic because the gate consumes the stream.)
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------ draws
    def _uniform(self, lo: float, hi: float, ndigits: int = 2) -> float:
        return round(float(self._rng.uniform(lo, hi)), ndigits)

    def _int(self, lo: int, hi: int) -> int:
        """Inclusive integer draw."""
        return int(self._rng.integers(lo, hi + 1))

    def _choice(self, options) -> object:
        return options[int(self._rng.integers(len(options)))]

    def _chance(self, p: float) -> bool:
        return bool(self._rng.random() < p)

    # ------------------------------------------------------- generation
    def generate(self, profile: str | FuzzProfile = "default") -> dict:
        """One scenario config drawn from ``profile``'s distribution."""
        profile = get_profile(profile)
        rng = self._rng

        dt = float(self._choice(profile.dt_choices))
        area = self._uniform(*profile.area_m, ndigits=0)
        n_uavs = self._int(*profile.uavs)
        horizon_steps = max(
            1, int(round(self._uniform(*profile.horizon_s, ndigits=1) / dt))
        )

        config: dict = {
            "description": f"fuzz profile={profile.name} seed={self.seed}",
            "seed": int(rng.integers(0, 2**31)),
            "engine": str(self._choice(("scalar", "vectorized"))),
            "dt": dt,
            "area_size_m": [area, area],
            "horizon_s": round(horizon_steps * dt, 6),
            "persons": self._int(*profile.persons),
            "uavs": [],
        }

        if self._chance(profile.p_environment):
            config["environment"] = {
                "wind_mean_mps": self._uniform(0.0, 12.0),
                "wind_direction_deg": self._uniform(0.0, 360.0, ndigits=0),
                "ambient_c": self._uniform(-10.0, 45.0, ndigits=1),
                "visibility": str(self._choice(("good", "good", "poor"))),
            }

        uav_ids = [f"uav{i + 1}" for i in range(n_uavs)]
        for uav_id in uav_ids:
            uav: dict = {
                "id": uav_id,
                "base": [
                    self._uniform(0.0, area),
                    self._uniform(0.0, area),
                    0.0,
                ],
                "rotors": int(self._choice((4, 4, 6, 8))),
                "max_speed_mps": self._uniform(6.0, 14.0, ndigits=1),
            }
            if self._chance(profile.p_mission):
                uav["mission"] = [
                    [
                        self._uniform(0.0, area),
                        self._uniform(0.0, area),
                        self._uniform(5.0, 40.0, ndigits=1),
                    ]
                    for _ in range(self._int(1, 4))
                ]
            config["uavs"].append(uav)

        horizon = config["horizon_s"]
        faults = [
            self._draw_fault(profile, uav_ids, horizon)
            for _ in range(self._int(0, profile.max_faults))
        ]
        config["faults"] = [fault for fault in faults if fault is not None]

        config["attacks"] = [
            {
                "type": "ros_spoofing",
                "topic": f"/{self._choice(uav_ids)}/pose",
                "sender": str(self._choice(uav_ids)),
                "start": self._uniform(1.0, max(1.5, 0.5 * horizon), ndigits=1),
                "rate_hz": self._uniform(0.5, 10.0, ndigits=1),
            }
            for _ in range(self._int(0, profile.max_attacks))
        ]

        # Trailing, gated draw: tiers with p_obstacles == 0.0 never touch
        # the stream here, so their historical corpora stay byte-identical.
        if profile.p_obstacles > 0.0 and self._chance(profile.p_obstacles):
            config["obstacles"] = self._draw_obstacles(area)
        return config

    def _draw_obstacles(self, area: float) -> dict:
        """One urban obstacle block over an ``area``-sided world.

        All primitives rise from the ground and the ceiling is left
        implicit (the loader derives it above the tallest obstacle plus
        inflation), so free space is always connected through the top
        layer and the A* planner can never be asked for an impossible
        route.
        """
        cell = float(self._choice((6.0, 8.0)))
        inflation = self._uniform(2.0, 5.0, ndigits=1)
        boxes = []
        for _ in range(self._int(1, 3)):
            center_e = self._uniform(0.1 * area, 0.9 * area, ndigits=1)
            center_n = self._uniform(0.1 * area, 0.9 * area, ndigits=1)
            half_e = self._uniform(5.0, 30.0, ndigits=1)
            half_n = self._uniform(5.0, 30.0, ndigits=1)
            height = self._uniform(10.0, 40.0, ndigits=1)
            boxes.append(
                {
                    "min": [round(center_e - half_e, 1),
                            round(center_n - half_n, 1), 0.0],
                    "max": [round(center_e + half_e, 1),
                            round(center_n + half_n, 1), height],
                }
            )
        cylinders = []
        for _ in range(self._int(0, 2)):
            cylinders.append(
                {
                    "center": [
                        self._uniform(0.1 * area, 0.9 * area, ndigits=1),
                        self._uniform(0.1 * area, 0.9 * area, ndigits=1),
                    ],
                    "radius": self._uniform(3.0, 15.0, ndigits=1),
                    "height": self._uniform(10.0, 35.0, ndigits=1),
                }
            )
        return {
            "cell_m": cell,
            "inflation_m": inflation,
            "boxes": boxes,
            "cylinders": cylinders,
        }

    def _draw_fault(
        self, profile: FuzzProfile, uav_ids: list[str], horizon: float
    ) -> dict | None:
        """One fault spec; ``None`` when the draw needs an absent shape
        (a partition in a one-UAV fleet). The discarded draws still
        consumed the stream, so determinism is unaffected."""
        kind = str(self._choice(profile.fault_types))
        at = self._uniform(1.0, max(1.5, 0.8 * horizon), ndigits=1)
        spec: dict = {"type": kind, "at": at}
        if kind == "network_partition":
            if len(uav_ids) < 2:
                return None
            split = self._int(1, len(uav_ids) - 1)
            spec["group_a"] = uav_ids[:split]
            spec["group_b"] = uav_ids[split:]
            spec["duration"] = self._uniform(2.0, 30.0, ndigits=1)
            return spec
        spec["uav"] = str(self._choice(uav_ids))
        if kind == "battery_collapse":
            spec["soc_drop_to"] = self._uniform(0.05, 0.6)
        elif kind in ("gps_denial", "comm_blackout"):
            spec["duration"] = self._uniform(2.0, 30.0, ndigits=1)
        elif kind == "gps_spoof":
            spec["offset"] = [
                self._uniform(-60.0, 60.0),
                self._uniform(-60.0, 60.0),
                self._uniform(-10.0, 10.0),
            ]
        elif kind == "camera_degradation":
            spec["rate"] = self._uniform(0.05, 0.9)
        elif kind == "comm_degradation":
            spec["loss"] = self._uniform(0.1, 0.95)
            spec["duration"] = self._uniform(2.0, 30.0, ndigits=1)
        return spec

    # ------------------------------------------------- swarm generation
    def generate_swarm(self, profile: str | FuzzProfile = "hostile") -> dict:
        """One swarm-tasking scenario config drawn from ``profile``.

        The emitted dict feeds :func:`repro.swarm.sim.run_swarm` directly
        (and :func:`repro.harness.oracles.run_swarm_oracles` in the fuzz
        loop). A separate draw sequence from :meth:`generate` — swarm and
        SAR scenarios never share a generator instance in the campaign —
        so extending one format cannot silently reshuffle the other.
        """
        profile = get_profile(profile)
        k = self._int(*profile.swarm_leaders)
        rho = self._int(*profile.swarm_rho)
        dt = 0.5
        horizon_steps = max(
            1,
            int(round(self._uniform(*profile.swarm_horizon_s, ndigits=1) / dt)),
        )
        horizon = round(horizon_steps * dt, 6)
        area = self._uniform(*profile.swarm_area_m, ndigits=0)
        config: dict = {
            "kind": "swarm",
            "description": f"swarm fuzz profile={profile.name} seed={self.seed}",
            "seed": int(self._rng.integers(0, 2**31)),
            "dt": dt,
            "horizon_s": horizon,
            "k_leaders": k,
            "rho": rho,
            "n_pois": self._int(*profile.swarm_pois),
            "area_m": area,
            # Down to half the world side: out-of-range stretches (loss
            # forced to 1.0) are a feature of the tier, not a bug.
            "comm_radius_m": self._uniform(0.5 * area, 1.5 * area, ndigits=0),
            "link_loss": self._uniform(*profile.swarm_loss),
            "task_timeout_s": self._uniform(20.0, 90.0, ndigits=1),
            "follower_dead_after_s": self._uniform(20.0, 60.0, ndigits=1),
        }
        faults = []
        for _ in range(self._int(0, profile.swarm_max_faults)):
            at = self._uniform(1.0, max(1.5, 0.8 * horizon), ndigits=1)
            # Gate first, members after — same stream discipline as the
            # SAR fault draw.
            if self._chance(0.5) and rho > 0:
                uav = f"f{self._int(0, k - 1):02d}_{self._int(0, rho - 1):02d}"
                faults.append({"type": "follower_loss", "uav": uav, "at": at})
            else:
                uav = f"lead{self._int(0, k - 1):02d}"
                faults.append({"type": "leader_demotion", "uav": uav, "at": at})
        config["faults"] = faults
        return config

    def generate_json(self, profile: str | FuzzProfile = "default") -> str:
        """The canonical byte-stable serialisation of one drawn scenario."""
        return scenario_to_json(self.generate(profile))


def scenario_to_json(config: dict) -> str:
    """Canonical scenario serialisation: sorted keys, 2-space indent."""
    return json.dumps(config, indent=2, sort_keys=True) + "\n"
