"""Automatic failure shrinking: minimize a violating scenario.

A fuzzer-found failure in a 40-UAV, 8-fault scenario is evidence; a
2-UAV, 1-fault scenario that still trips the same oracle is a bug
report. :func:`shrink_scenario` greedily removes structure — UAVs (with
their dependent faults, attacks and partition memberships), fault
scripts, attacks, survivors, the weather section — then binary-searches
the shortest horizon, keeping every candidate only if it still
reproduces a violation of the target oracle. Passes repeat to a fixed
point, and the final minimal scenario is re-checked twice for a
deterministic verdict before being reported.

Everything here is pure config-dict surgery plus re-running
:func:`repro.harness.oracles.run_scenario_oracles`; the shrinker never
mutates the input config.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.harness.oracles import run_scenario_oracles, scenario_horizon_s


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    config: dict
    oracle: str
    checks: int
    #: Violation messages of the minimized scenario's (deterministic) run.
    violations: list[dict]

    @property
    def size(self) -> int:
        """Canonical-JSON size of the minimized config, in bytes."""
        return scenario_size(self.config)


def scenario_size(config: dict) -> int:
    """Size metric shrinking minimizes: canonical JSON byte length."""
    return len(json.dumps(config, sort_keys=True))


def _clone(config: dict) -> dict:
    return json.loads(json.dumps(config))


def _drop_uav(config: dict, uav_id: str) -> dict | None:
    """``config`` without ``uav_id`` and everything referencing it.

    Partition groups are pruned rather than dropped wholesale; a fault
    whose group empties goes with it. UAV ids are never renumbered — the
    shrunk scenario must stay recognisably a sub-scenario of the
    original. Returns ``None`` when the drop would empty the fleet.
    """
    uavs = [u for u in config.get("uavs", []) if u.get("id") != uav_id]
    if not uavs or len(uavs) == len(config.get("uavs", [])):
        return None
    out = _clone(config)
    out["uavs"] = [u for u in out["uavs"] if u.get("id") != uav_id]
    faults = []
    for fault in out.get("faults", []):
        if fault.get("uav") == uav_id:
            continue
        if fault.get("type") == "network_partition":
            fault = dict(fault)
            fault["group_a"] = [u for u in fault["group_a"] if u != uav_id]
            fault["group_b"] = [u for u in fault["group_b"] if u != uav_id]
            if not fault["group_a"] or not fault["group_b"]:
                continue
        faults.append(fault)
    if "faults" in out:
        out["faults"] = faults
    if "attacks" in out:
        out["attacks"] = [
            a for a in out["attacks"] if a.get("sender", "uav1") != uav_id
        ]
    chaos = out.get("chaos")
    if chaos is not None and chaos.get("uav", "uav1") == uav_id:
        return None  # the scripted bug needs its target
    return out


def _without_index(config: dict, section: str, index: int) -> dict:
    out = _clone(config)
    out[section] = [
        item for i, item in enumerate(out[section]) if i != index
    ]
    if not out[section]:
        del out[section]
    return out


def shrink_scenario(
    config: dict,
    target_oracle: str | None = None,
    horizon_s: float | None = None,
    max_checks: int = 200,
) -> ShrinkResult:
    """Minimize ``config`` while it still violates ``target_oracle``.

    ``target_oracle`` defaults to the first oracle the unshrunk scenario
    violates (the input must violate *something*, else ``ValueError``).
    ``max_checks`` caps the number of oracle re-runs; shrinking stops at
    the cap and returns the smallest reproducer found so far — still a
    valid reproducer, just possibly not minimal.
    """
    config = _clone(config)
    if horizon_s is not None:
        config["horizon_s"] = float(horizon_s)
    checks = 0

    def reproduces(candidate: dict) -> bool:
        nonlocal checks
        checks += 1
        report = run_scenario_oracles(candidate)
        return target_oracle in report.violated_oracles

    baseline = run_scenario_oracles(config)
    checks += 1
    if target_oracle is None:
        if not baseline.violated_oracles:
            raise ValueError(
                "shrink_scenario: input scenario violates no oracle"
            )
        target_oracle = baseline.violated_oracles[0]
    elif target_oracle not in baseline.violated_oracles:
        raise ValueError(
            f"shrink_scenario: input scenario does not violate "
            f"{target_oracle!r} (violates {baseline.violated_oracles!r})"
        )

    # Greedy removal passes to a fixed point: each pass tries every
    # still-droppable element once; another pass runs while any drop
    # landed (earlier drops can unlock later ones).
    shrunk = True
    while shrunk and checks < max_checks:
        shrunk = False
        for uav in list(config.get("uavs", [])):
            candidate = _drop_uav(config, uav["id"])
            if candidate is not None and reproduces(candidate):
                config = candidate
                shrunk = True
            if checks >= max_checks:
                break
        for section in ("faults", "attacks"):
            index = 0
            while index < len(config.get(section, [])) and checks < max_checks:
                candidate = _without_index(config, section, index)
                if reproduces(candidate):
                    config = candidate  # same index now names the next item
                else:
                    index += 1
        for key, empty in (("environment", None), ("persons", 0)):
            if checks >= max_checks or config.get(key, empty) == empty:
                continue
            candidate = _clone(config)
            del candidate[key]
            if reproduces(candidate):
                config = candidate
                shrunk = True

    # Horizon last: binary-search the shortest run (in dt multiples)
    # that still reproduces. Chaos scripts fire at a fixed time, so the
    # violation time bounds the horizon from below.
    dt = float(config.get("dt", 0.5))
    horizon = scenario_horizon_s(config)
    lo_steps, hi_steps = 1, max(1, int(round(horizon / dt)))
    while lo_steps < hi_steps and checks < max_checks:
        mid = (lo_steps + hi_steps) // 2
        candidate = _clone(config)
        candidate["horizon_s"] = round(mid * dt, 6)
        if reproduces(candidate):
            hi_steps = mid
        else:
            lo_steps = mid + 1
    config["horizon_s"] = round(hi_steps * dt, 6)

    # Deterministic-verdict check: the minimized scenario must fail the
    # same way twice in a row before we publish it as a reproducer.
    first = run_scenario_oracles(config)
    second = run_scenario_oracles(config)
    checks += 2
    if first.to_dict() != second.to_dict():
        raise RuntimeError(
            "shrink_scenario: minimized scenario is non-deterministic "
            f"(verdicts differ across two identical runs): {config!r}"
        )
    if target_oracle not in first.violated_oracles:
        raise RuntimeError(
            "shrink_scenario: minimized scenario stopped reproducing "
            f"{target_oracle!r} on the final check"
        )
    return ShrinkResult(
        config=config,
        oracle=target_oracle,
        checks=checks,
        violations=[v.to_dict() for v in first.violations],
    )
