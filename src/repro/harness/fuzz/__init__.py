"""Procedural scenario fuzzing: generate, check, shrink.

The dependability claim of the paper is only as strong as the diversity
of inputs the stack has survived. This package turns the three curated
``scenarios/*.json`` into an unbounded supply:

:mod:`~repro.harness.fuzz.generator`
    ``ScenarioGenerator(seed).generate(profile)`` — seeded, profile-
    shaped random scenarios (fleet mix, weather, survivors, fault and
    attack scripts) that round-trip through ``load_scenario_json``.
    Same seed, byte-identical JSON.
:mod:`~repro.harness.fuzz.campaign`
    The registered ``fuzz`` campaign: generated scenarios through the
    fault-tolerant runner with the :mod:`repro.harness.oracles` suite
    as the verdict, plus :func:`~repro.harness.fuzz.campaign.run_fuzz`,
    which shrinks any violation and writes ``artifacts/repro_<seed>.json``.
:mod:`~repro.harness.fuzz.shrink`
    Greedy scenario minimizer: drop UAVs, faults, attacks, weather;
    shorten the horizon; keep only what still reproduces the violation.
"""

from repro.harness.fuzz.campaign import FUZZ_EXPERIMENT, run_fuzz
from repro.harness.fuzz.generator import (
    PROFILES,
    FuzzProfile,
    ScenarioGenerator,
)
from repro.harness.fuzz.shrink import shrink_scenario

__all__ = [
    "FUZZ_EXPERIMENT",
    "FuzzProfile",
    "PROFILES",
    "ScenarioGenerator",
    "run_fuzz",
    "shrink_scenario",
]
