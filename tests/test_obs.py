"""Unit tests for the repro.obs observability subsystem."""

import json
import multiprocessing

import pytest

from repro import obs
from repro.obs.events import EventLog
from repro.obs.export import chrome_trace, prometheus_text, write_chrome_trace
from repro.obs.metrics import (
    MetricsRegistry,
    empty_snapshot,
    label_key,
    merge_snapshots,
    parse_label_key,
)
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _clean_session():
    """Every test starts and ends with the global session off and empty."""
    obs.reset()
    yield
    obs.reset()


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("msgs", topic="/a")
        reg.inc("msgs", 2.0, topic="/a")
        reg.inc("msgs", topic="/b")
        assert reg.counter_value("msgs", topic="/a") == 3.0
        assert reg.counter_value("msgs", topic="/b") == 1.0
        assert reg.counter_value("msgs", topic="/nope") == 0.0
        assert reg.counter_series("msgs") == {"topic=/a": 3.0, "topic=/b": 1.0}

    def test_label_key_roundtrip_is_sorted(self):
        key = label_key({"b": 2, "a": "x"})
        assert key == "a=x,b=2"
        assert parse_label_key(key) == {"a": "x", "b": "2"}
        assert parse_label_key("") == {}

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("depth", 4, queue="q")
        reg.gauge("depth", 2, queue="q")
        assert reg.snapshot()["gauges"]["depth"]["queue=q"] == 2.0

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        reg.set_histogram_bounds("lat", [0.1, 1.0])
        for value in (0.05, 0.5, 0.5, 5.0):
            reg.observe("lat", value)
        hist = reg.snapshot()["histograms"]["lat"][""]
        assert hist["bounds"] == [0.1, 1.0]
        assert hist["counts"] == [1, 2, 1]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(6.05)
        assert hist["min"] == 0.05 and hist["max"] == 5.0

    def test_snapshot_is_a_deep_copy(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5)
        snap = reg.snapshot()
        snap["histograms"]["lat"][""]["counts"][0] = 999
        assert reg.snapshot()["histograms"]["lat"][""]["counts"][0] != 999

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.inc("c", topic="/t", uav="u1")
        reg.gauge("g", 3.5)
        reg.observe("h", 0.2, phase="x")
        json.dumps(reg.snapshot())  # must not raise


class TestMergeSnapshots:
    def test_merge_equals_serial_counting(self):
        serial = MetricsRegistry()
        parts = []
        for chunk in ([0.1, 0.2], [5.0], [0.15, 61.0]):
            worker = MetricsRegistry()
            for value in chunk:
                for reg in (worker, serial):
                    reg.inc("n", topic="/t")
                    reg.observe("lat", value)
            parts.append(worker.snapshot())
        assert merge_snapshots(parts) == serial.snapshot()

    def test_gauges_merge_by_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth", 3)
        b.gauge("depth", 7)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["gauges"]["depth"][""] == 7.0
        # Order-independent.
        assert merge_snapshots([b.snapshot(), a.snapshot()]) == merged

    def test_bounds_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_histogram_bounds("h", [1.0])
        a.observe("h", 0.5)
        b.set_histogram_bounds("h", [2.0])
        b.observe("h", 0.5)
        with pytest.raises(ValueError, match="bounds"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_empty_and_missing_sections_are_fine(self):
        reg = MetricsRegistry()
        reg.inc("c")
        merged = merge_snapshots([{}, empty_snapshot(), reg.snapshot()])
        assert merged["counters"]["c"][""] == 1.0


def _pool_count_worker(n: int) -> dict:
    """Count in an isolated session; return the snapshot (runs in a pool)."""
    with obs.isolated(enabled=True) as session:
        for i in range(n):
            session.metrics.inc("events_total", topic=f"/t{i % 3}")
            session.metrics.observe("latency_s", (i % 7) * 0.001)
        session.metrics.gauge("peak", n)
        return session.metrics.snapshot()


class TestMultiprocessMerge:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="needs fork start method",
    )
    def test_worker_snapshots_fold_to_serial_counts(self):
        chunks = [50, 80, 110]
        with multiprocessing.get_context("fork").Pool(2) as pool:
            snapshots = pool.map(_pool_count_worker, chunks)
        merged = merge_snapshots(snapshots)
        serial = merge_snapshots([_pool_count_worker(n) for n in chunks])
        # Gauges keep the max, so serial == merged there too.
        assert merged == serial
        total = sum(merged["counters"]["events_total"].values())
        assert total == sum(chunks)
        assert merged["gauges"]["peak"][""] == max(chunks)


class TestTracer:
    def test_nesting_depth_parent_index(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", sim_time=4.0, uav="u1") as inner:
                pass
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == outer.index
        spans = tracer.drain()
        # Closed inner-first, both well-formed.
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[0]["labels"] == {"uav": "u1"}
        assert all(s["duration_s"] >= 0.0 for s in spans)
        assert all("pid" in s for s in spans)
        assert tracer.drain() == []

    def test_exception_still_closes_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer._stack == []
        (record,) = tracer.drain()
        assert record["name"] == "doomed"
        assert record["duration_s"] >= 0.0
        # The next span nests at the top level again.
        with tracer.span("after") as after:
            pass
        assert after.depth == 0 and after.parent is None

    def test_timed_span_measures_without_recording(self):
        tracer = Tracer()
        with tracer.timed("quiet") as span:
            pass
        assert span.duration_s >= 0.0
        assert tracer.drain() == []

    def test_capacity_drops_are_counted(self):
        tracer = Tracer(capacity=2)
        for _ in range(4):
            with tracer.span("s"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 2


class TestEventLog:
    def test_emit_and_drain(self):
        log = EventLog()
        log.emit("warning", "security.ids", "rate_anomaly",
                 sim_time=3.5, wall_s=0.1, topic="/t")
        assert len(log) == 1
        assert log.by_name("rate_anomaly")[0].payload == {"topic": "/t"}
        (record,) = log.drain()
        assert record["severity"] == "warning"
        assert record["sim_time"] == 3.5
        assert len(log) == 0

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            EventLog().emit("fatal", "x", "y")

    def test_capacity_drops_are_counted(self):
        log = EventLog(capacity=1)
        log.emit("info", "a", "b")
        log.emit("info", "a", "c")
        assert len(log) == 1 and log.dropped == 1


class TestGlobalSession:
    def test_disabled_span_is_the_cached_noop(self):
        assert obs.span("x") is obs.span("y")
        with obs.span("x"):
            pass
        obs.event("info", "sub", "name")
        obs.enable()
        assert len(obs.OBS.tracer.spans) == 0
        assert len(obs.OBS.events) == 0

    def test_enabled_records_spans_and_events(self):
        obs.enable()
        with obs.span("work", sim_time=1.0, uav="u1"):
            obs.event("info", "core", "thing", sim_time=1.0, detail=7)
        payload = obs.collect()
        assert [s["name"] for s in payload["spans"]] == ["work"]
        assert payload["events"][0]["payload"] == {"detail": 7}

    def test_isolated_sessions_nest_and_restore(self):
        obs.enable()
        obs.OBS.metrics.inc("outer")
        with obs.isolated(enabled=True) as session:
            session.metrics.inc("inner")
            with obs.isolated(enabled=False):
                assert not obs.OBS.enabled
                obs.event("info", "x", "swallowed")  # disabled: dropped
            assert session.metrics.counter_value("inner") == 1.0
            assert session.metrics.counter_value("outer") == 0.0
        assert obs.OBS.enabled
        assert obs.OBS.metrics.counter_value("outer") == 1.0
        assert obs.OBS.metrics.counter_value("inner") == 0.0

    def test_capture_roundtrips_through_jsonl(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        with obs.capture(trace_path=trace, meta={"experiment": "t"}) as captured:
            with obs.span("phase.sim"):
                obs.OBS.metrics.inc("n")
            obs.event("warning", "uav.battery", "fault_activated", sim_time=2.0)
        assert captured["payload"]["metrics"]["counters"]["n"][""] == 1.0
        records = obs.read_trace(trace)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "meta" and records[0]["experiment"] == "t"
        assert kinds.count("span") == 1
        assert kinds.count("event") == 1
        assert kinds.count("metrics") == 1
        text = obs.summarize_trace(trace)
        assert "phase.sim" in text and "fault_activated" in text

    def test_read_trace_names_the_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            obs.read_trace(path)


class TestChromeExport:
    def _records(self):
        with obs.capture() as captured:
            with obs.span("outer", uav="u1"):
                with obs.span("inner.work", uav="u1"):
                    pass
            obs.event("warning", "security.ids", "alert", sim_time=1.0)
        payload = captured["payload"]
        return (
            [{"kind": "meta"}]
            + [{"kind": "span", **s} for s in payload["spans"]]
            + [{"kind": "event", **e} for e in payload["events"]]
        )

    def test_schema(self):
        doc = chrome_trace(self._records())
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner.work"}
        for entry in complete:
            assert {"pid", "tid", "ts", "dur", "cat"} <= set(entry)
            assert entry["ts"] >= 0 and entry["dur"] >= 0
        instant = [e for e in events if e["ph"] == "i"][0]
        assert instant["name"] == "security.ids:alert"
        names = [e for e in events if e["ph"] == "M"]
        assert all(e["name"] == "thread_name" for e in names)

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.chrome.json"
        write_chrome_trace(self._records(), path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestPrometheusExport:
    def test_text_format(self):
        reg = MetricsRegistry()
        reg.inc("bus_published_total", 3, topic="/a")
        reg.gauge("queue_depth", 4, uav="u1")
        reg.set_histogram_bounds("lat_s", [0.1, 1.0])
        for value in (0.05, 0.5, 3.0):
            reg.observe("lat_s", value)
        text = prometheus_text(reg.snapshot())
        assert '# TYPE bus_published_total counter' in text
        assert 'bus_published_total{topic="/a"} 3' in text
        assert 'queue_depth{uav="u1"} 4' in text
        # Buckets are cumulative and end at +Inf == count.
        assert 'lat_s_bucket{le="0.1"} 1' in text
        assert 'lat_s_bucket{le="1"} 2' in text
        assert 'lat_s_bucket{le="+Inf"} 3' in text
        assert "lat_s_count 3" in text

    def test_label_values_escaped_for_scrapers(self):
        # A label derived from an error message may carry every character
        # the exposition format treats specially; an unescaped newline
        # would split the sample line and break the scrape.
        reg = MetricsRegistry()
        reg.inc("errs_total", message='path\\tmp "x"\nboom')
        text = prometheus_text(reg.snapshot())
        assert 'message="path\\\\tmp \\"x\\"\\nboom"' in text
        # One physical line per sample: nothing leaked a raw newline.
        for line in text.splitlines():
            assert line.startswith("#") or line.count(" ") >= 1

    def test_every_family_has_help_and_type(self):
        reg = MetricsRegistry()
        reg.inc("service_jobs_submitted_total", experiment="x", tenant="t")
        reg.gauge("service_jobs_running", 1)
        reg.observe("service_job_duration_seconds", 2.5, experiment="x")
        reg.inc("made_up_metric_total")
        text = prometheus_text(reg.snapshot())
        assert "# HELP service_jobs_submitted_total Jobs accepted" in text
        assert "# TYPE service_jobs_submitted_total counter" in text
        assert "# TYPE service_jobs_running gauge" in text
        assert "# TYPE service_job_duration_seconds histogram" in text
        # Unknown families still get the header pair scrapers expect.
        assert "# HELP made_up_metric_total" in text
        assert "# TYPE made_up_metric_total counter" in text
        # Headers precede their family's first sample.
        lines = text.splitlines()
        type_at = lines.index("# TYPE service_jobs_submitted_total counter")
        sample_at = next(
            i for i, l in enumerate(lines)
            if l.startswith("service_jobs_submitted_total{")
        )
        assert type_at < sample_at

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_text(empty_snapshot()) == ""
