"""Tests for night-ops missions (modality adapter) and arrangement-
calibrated propulsion chains."""

import numpy as np
import pytest

from repro.experiments.common import build_three_uav_world
from repro.safedrones.arrangement import ArrangementAnalysis
from repro.safedrones.propulsion import (
    PropulsionModel,
    motor_chain_from_survival,
)
from repro.sar.mission import SarMission
from repro.sar.thermal import (
    DualModalityDetector,
    LightCondition,
    ModalityMissionDetector,
)


def run_night_mission(thermal_available: bool, seed=31):
    scenario = build_three_uav_world(seed=seed, n_persons=10)
    world = scenario.world
    detector = ModalityMissionDetector(
        detector=DualModalityDetector(
            rng=np.random.default_rng(seed),
            light=LightCondition.NIGHT,
            ambient_c=15.0,
            thermal_available=thermal_available,
        )
    )
    mission = SarMission(world=world, altitude_m=20.0, detector=detector)
    mission.assign_paths()
    return mission.run(max_time_s=1500.0)


class TestNightOperations:
    def test_thermal_keeps_night_find_rate_high(self):
        metrics = run_night_mission(thermal_available=True)
        assert metrics.find_rate >= 0.8

    def test_rgb_only_night_degrades(self):
        with_thermal = run_night_mission(thermal_available=True)
        rgb_only = run_night_mission(thermal_available=False)
        assert rgb_only.detection_accuracy < with_thermal.detection_accuracy

    def test_detection_accuracy_matches_model(self):
        metrics = run_night_mission(thermal_available=False)
        from repro.sar.thermal import rgb_accuracy

        expected = rgb_accuracy(20.0, LightCondition.NIGHT)
        assert metrics.detection_accuracy == pytest.approx(expected, abs=0.12)


class TestArrangementCalibratedChain:
    @pytest.fixture(scope="class")
    def hexa(self):
        return ArrangementAnalysis(rotor_count=6)

    def test_chain_reflects_survival_table(self, hexa):
        chain = motor_chain_from_survival(6, hexa.survival_by_count)
        # The hexa survival table tolerates up to 2 failures for some
        # combinations -> states ok_6, ok_5, ok_4, failed.
        assert chain.states == ["ok_6", "ok_5", "ok_4", "failed"]

    def test_from_arrangement_uses_exact_table(self, hexa):
        model = PropulsionModel.from_arrangement(hexa)
        assert model.chain.states == ["ok_6", "ok_5", "ok_4", "failed"]
        # First failure is always survivable for the PNPNPN hexa.
        assert model.reconfig_success == pytest.approx(1.0)

    def test_two_failures_still_possibly_controllable(self, hexa):
        model = PropulsionModel.from_arrangement(hexa)
        model.record_motor_failure()
        model.record_motor_failure()
        assert model.controllable
        assert 0.0 < model.failure_probability(3600.0) < 1.0

    def test_three_failures_fatal(self, hexa):
        model = PropulsionModel.from_arrangement(hexa)
        for _ in range(3):
            model.record_motor_failure()
        assert not model.controllable
        assert model.failure_probability(1.0) == 1.0

    def test_arrangement_model_less_optimistic_than_perfect_reconfig(self, hexa):
        arrangement_model = PropulsionModel.from_arrangement(hexa)
        perfect = PropulsionModel(rotor_count=6, reconfig_success=1.0)
        horizon = 8 * 3600.0
        # The default table stops at 1 tolerated failure; the arrangement
        # chain continues to 2 but with combination-dependent loss — the
        # two models must both be sane, and the arrangement one sits
        # between the naive table and the perfect-reconfig fantasy.
        naive = PropulsionModel(rotor_count=6, reconfig_success=1.0)
        naive_pof = naive.failure_probability(horizon)
        arrangement_pof = arrangement_model.failure_probability(horizon)
        assert 0.0 < arrangement_pof < 1.0
        # Tolerating a second failure (partially) beats the 1-failure table.
        assert arrangement_pof < naive_pof

    def test_quad_arrangement_matches_table(self):
        quad = ArrangementAnalysis(rotor_count=4)
        model = PropulsionModel.from_arrangement(quad)
        assert model.chain.states == ["ok_4", "failed"]
        model.record_motor_failure()
        assert not model.controllable
