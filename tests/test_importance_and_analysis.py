"""Unit tests for FTA importance measures and quantitative attack-tree
analysis."""

import pytest

from repro.safedrones.fta import AndGate, BasicEvent, FaultTree, OrGate
from repro.safedrones.importance import (
    importance_analysis,
    most_critical_event,
)
from repro.security.analysis import (
    eavesdrop_replay_attack_tree,
    gps_spoofing_attack_tree,
    propagate_likelihood,
    risk_summary,
    threat_landscape,
    uav_threat_library,
    LIKELIHOOD_SCALE,
)
from repro.security.attack_trees import AttackNode, AttackTree, GateType, ros_spoofing_attack_tree


def series_parallel_tree():
    """battery OR (gps AND vision): battery should dominate."""
    return FaultTree(
        name="loss",
        top=OrGate(
            "top",
            [
                BasicEvent("battery", 0.05),
                AndGate("nav", [BasicEvent("gps", 0.1), BasicEvent("vision", 0.2)]),
            ],
        ),
    )


class TestImportance:
    def test_single_event_birnbaum_is_one(self):
        tree = FaultTree("t", top=BasicEvent("only", 0.3))
        report = importance_analysis(tree)[0]
        assert report.birnbaum == pytest.approx(1.0)
        assert report.fussell_vesely == pytest.approx(1.0)

    def test_or_gate_birnbaum_closed_form(self):
        # top = 1 - (1-pa)(1-pb); dI/dpa = 1 - pb.
        tree = FaultTree(
            "t", top=OrGate("o", [BasicEvent("a", 0.2), BasicEvent("b", 0.4)])
        )
        reports = {r.event: r for r in importance_analysis(tree)}
        assert reports["a"].birnbaum == pytest.approx(0.6)
        assert reports["b"].birnbaum == pytest.approx(0.8)

    def test_and_gate_birnbaum_closed_form(self):
        tree = FaultTree(
            "t", top=AndGate("a", [BasicEvent("a", 0.2), BasicEvent("b", 0.4)])
        )
        reports = {r.event: r for r in importance_analysis(tree)}
        assert reports["a"].birnbaum == pytest.approx(0.4)
        assert reports["b"].birnbaum == pytest.approx(0.2)

    def test_series_element_dominates_redundant_pair(self):
        assert most_critical_event(series_parallel_tree()) == "battery"

    def test_raw_rrw_relationships(self):
        tree = series_parallel_tree()
        reports = {r.event: r for r in importance_analysis(tree)}
        for report in reports.values():
            assert report.raw >= 1.0
            assert report.rrw >= 1.0
        # Removing the dominant single-point failure buys the most.
        assert reports["battery"].rrw > reports["gps"].rrw

    def test_evaluation_restores_probabilities(self):
        tree = series_parallel_tree()
        before = tree.top_event_probability()
        importance_analysis(tree)
        assert tree.top_event_probability() == pytest.approx(before)

    def test_criticality_bounded_by_one(self):
        for report in importance_analysis(series_parallel_tree()):
            assert 0.0 <= report.criticality <= 1.0

    def test_sorted_by_birnbaum(self):
        reports = importance_analysis(series_parallel_tree())
        values = [r.birnbaum for r in reports]
        assert values == sorted(values, reverse=True)


class TestAttackTreeQuantification:
    def test_leaf_likelihood_from_scale(self):
        node = AttackNode("x", "t", likelihood="high")
        assert propagate_likelihood(node) == LIKELIHOOD_SCALE["high"]

    def test_and_multiplies(self):
        tree = AttackNode(
            "root", "t", GateType.AND,
            children=[
                AttackNode("a", "a", likelihood="high"),
                AttackNode("b", "b", likelihood="medium"),
            ],
        )
        assert propagate_likelihood(tree) == pytest.approx(0.7 * 0.4)

    def test_or_complement_product(self):
        tree = AttackNode(
            "root", "t", GateType.OR,
            children=[
                AttackNode("a", "a", likelihood="high"),
                AttackNode("b", "b", likelihood="medium"),
            ],
        )
        assert propagate_likelihood(tree) == pytest.approx(1 - 0.3 * 0.6)

    def test_unknown_likelihood_rejected(self):
        node = AttackNode("x", "t", likelihood="sometimes")
        with pytest.raises(ValueError):
            propagate_likelihood(node)

    def test_risk_summary_structure(self):
        summary = risk_summary(ros_spoofing_attack_tree())
        assert 0.0 < summary.root_likelihood <= 1.0
        assert summary.risk == pytest.approx(
            summary.root_likelihood * summary.severity
        )
        assert summary.dominant_path[0] == "manipulate_mapping"

    def test_dominant_path_picks_likelier_or_branch(self):
        summary = risk_summary(ros_spoofing_attack_tree())
        # network_intrusion (high) beats node_compromise (low).
        assert "network_intrusion" in summary.dominant_path
        assert "node_compromise" not in summary.dominant_path

    def test_library_trees_are_well_formed(self):
        for tree in uav_threat_library():
            assert tree.leaves()
            assert 0.0 < propagate_likelihood(tree.root) <= 1.0
            # JSON round trip preserved.
            rebuilt = AttackTree.from_json(tree.to_json())
            assert propagate_likelihood(rebuilt.root) == pytest.approx(
                propagate_likelihood(tree.root)
            )

    def test_threat_landscape_sorted_by_risk(self):
        summaries = threat_landscape(uav_threat_library())
        risks = [s.risk for s in summaries]
        assert risks == sorted(risks, reverse=True)
        assert len(summaries) == 3

    def test_gps_tree_requires_both_steps(self):
        tree = gps_spoofing_attack_tree()
        tree.mark_achieved("record_live_signal")
        assert not tree.root_achieved()
        tree.mark_achieved("overpower_receiver")
        assert tree.root_achieved()

    def test_eavesdrop_tree_alert_binding(self):
        tree = eavesdrop_replay_attack_tree()
        assert tree.leaf_by_alert_type("promiscuous_probe")
        assert tree.leaf_by_alert_type("message_injection")
