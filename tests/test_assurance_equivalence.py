"""Differential suite: the batched assurance plane vs the scalar reference.

The batched plane (:mod:`repro.core.batch`) promises *bit-identical*
safety semantics to the scalar EDDI/ConSert/SafeML stack — not "close
enough", identical: guarantee traces, ConSert gate outputs, SafeDrones
reliability numbers, SafeML distance measures, and MissionDecider
verdicts must match to the last bit, because every one of them feeds a
discrete branch (demotion, task redistribution) where a single ULP flips
the outcome.

These tests run the same scenario through both engines side by side —
scalar plane on a scalar world, batched plane on a vectorized world,
sharing only the seeds — and demand exact equality (``tol=0.0``) at
every assurance cycle, across every shipped scenario and 50 seeded
random fleets with adversarial mid-run mutations.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.batch import (
    BatchAssurancePlane,
    ScalarAssurancePlane,
    build_assurance,
    compiled_conserts,
)
from repro.experiments.common import build_three_uav_world
from repro.safeml.distances import ALL_MEASURES
from repro.safeml.monitor import SafeMlMonitor
from repro.scenario import load_scenario_json

SCENARIO_DIR = Path(__file__).parent.parent / "scenarios"
SCENARIOS = sorted(SCENARIO_DIR.glob("*.json"))

#: The issue's contract: exact equality, asserted directly (no epsilon).
TOL = 0.0

#: Long enough to cross every shipped scenario's fault/attack window
#: (latest onset is the 250 s battery collapse in fig5_battery_fault).
T_END = 320.0


def _assert_assessments_equal(a, b, where: str) -> None:
    if a is None or b is None:
        assert a is None and b is None, f"{where}: one assessment missing"
        return
    assert a.stamp == b.stamp, where
    for key in (
        "failure_probability",
        "battery_pof",
        "propulsion_pof",
        "processor_pof",
    ):
        va, vb = getattr(a, key), getattr(b, key)
        assert abs(va - vb) <= TOL and va == vb, f"{where}: {key} {va} != {vb}"
    assert a.level is b.level, f"{where}: level {a.level} != {b.level}"
    assert a.battery_fault_detected == b.battery_fault_detected, where
    assert a.abort_recommended == b.abort_recommended, where


def _assert_reports_equal(a, b, where: str) -> None:
    if a is None or b is None:
        assert a is None and b is None, f"{where}: one SafeML report missing"
        return
    assert a.distances.keys() == b.distances.keys(), where
    for key in a.distances:
        va, vb = a.distances[key], b.distances[key]
        assert va == vb, f"{where}: distance {key} {va!r} != {vb!r}"
    assert a.z_score == b.z_score, f"{where}: z {a.z_score} != {b.z_score}"
    assert a.uncertainty == b.uncertainty, where
    assert a.level is b.level, f"{where}: level {a.level} != {b.level}"


def _assert_planes_agree(scalar, batched, where: str) -> None:
    """Full cross-section: evidence, gates, assessments, reports, traces."""
    assert scalar.uav_ids == batched.uav_ids, where
    for uav_id in scalar.uav_ids:
        w = f"{where} {uav_id}"
        assert scalar.evidence(uav_id) == batched.evidence(uav_id), w
        assert scalar.consert_offers(uav_id) == batched.consert_offers(uav_id), w
        assert (
            scalar.current_guarantee(uav_id)
            is batched.current_guarantee(uav_id)
        ), w
        _assert_assessments_equal(
            scalar.assessment(uav_id), batched.assessment(uav_id), w
        )
        _assert_reports_equal(
            scalar.safeml_report(uav_id), batched.safeml_report(uav_id), w
        )


def _assert_decisions_equal(a, b, where: str) -> None:
    assert a.verdict is b.verdict, f"{where}: {a.verdict} != {b.verdict}"
    assert a.uav_guarantees == b.uav_guarantees, where
    assert a.capable_uavs == b.capable_uavs, where
    assert a.takeover_uavs == b.takeover_uavs, where
    assert a.dropped_uavs == b.dropped_uavs, where


def _run_lockstep(scalar_world, vector_world, steps: int, *, mutate=None):
    """Step both worlds + planes in lockstep, asserting per-cycle equality."""
    scalar_plane = build_assurance(scalar_world)
    batched_plane = build_assurance(vector_world)
    assert isinstance(scalar_plane, ScalarAssurancePlane)
    assert isinstance(batched_plane, BatchAssurancePlane)
    for step in range(steps):
        if mutate is not None:
            mutate(step, scalar_world, scalar_plane)
            mutate(step, vector_world, batched_plane)
        ta = scalar_world.step()
        tb = vector_world.step()
        assert ta == tb
        ga = scalar_plane.step(ta)
        gb = batched_plane.step(tb)
        assert ga == gb, f"t={ta}: guarantees {ga} != {gb}"
        _assert_planes_agree(scalar_plane, batched_plane, f"t={ta}")
        da = scalar_plane.decide()
        db = batched_plane.decide()
        _assert_decisions_equal(da, db, f"t={ta}")
    for uav_id in scalar_plane.uav_ids:
        assert scalar_plane.guarantee_trace(uav_id) == batched_plane.guarantee_trace(
            uav_id
        ), uav_id
        la = [
            (r.stamp, r.guarantee, r.previous)
            for r in scalar_plane.response_log(uav_id)
        ]
        lb = [
            (r.stamp, r.guarantee, r.previous)
            for r in batched_plane.response_log(uav_id)
        ]
        assert la == lb, uav_id
    assert len(scalar_plane.decider_history) == len(batched_plane.decider_history)
    return scalar_plane, batched_plane


@pytest.mark.parametrize(
    "scenario_path", SCENARIOS, ids=[p.stem for p in SCENARIOS]
)
def test_scenarios_bit_identical_assurance(scenario_path):
    """Every shipped scenario, assurance cycle compared at every step.

    Runs well past every fault onset (battery collapse, GPS denial and
    spoofing, camera degradation, wind) so the spoof detector, the
    SoC-collapse fault path, and GPS-quality demotions all fire in both
    planes.
    """
    text = scenario_path.read_text()
    scalar = load_scenario_json(text, engine="scalar")
    vector = load_scenario_json(text, engine="vectorized")
    steps = int(round(T_END / scalar.world.dt))
    _run_lockstep(scalar.world, vector.world, steps)


def _random_mutator(seed: int):
    """A deterministic adversarial schedule, applied identically per engine.

    Draws are taken from a private generator (not the world's), so the
    simulation streams are untouched; each mutation targets the same UAV
    at the same step in both engines.
    """
    rng = np.random.default_rng(seed)
    script: dict[int, list[tuple]] = {}
    for _ in range(12):
        at = int(rng.integers(0, 40))
        kind = rng.choice(
            ["deny", "spoof", "imu", "camera", "motor", "drain", "heal"]
        )
        target = int(rng.integers(0, 1 << 30))
        magnitude = float(rng.random())
        script.setdefault(at, []).append((str(kind), target, magnitude))

    def mutate(step: int, world, plane) -> None:
        uav_ids = list(world.uavs)
        if not uav_ids:
            return
        for kind, target, magnitude in script.get(step, ()):
            uav = world.uavs[uav_ids[target % len(uav_ids)]]
            if kind == "deny":
                uav.sensors.gps.denied = True
            elif kind == "spoof":
                offset = (40.0 * magnitude, -25.0 * magnitude, 0.0)
                uav.sensors.gps.spoof_offset_m = offset
            elif kind == "imu":
                uav.sensors.imu.healthy = False
            elif kind == "camera":
                uav.sensors.camera.health = magnitude * 0.6
            elif kind == "motor":
                uav.motors_failed = 1 + int(magnitude * 2.0)
            elif kind == "drain":
                uav.battery.soc = uav.battery.soc * (0.3 + 0.5 * magnitude)
            elif kind == "heal":
                uav.sensors.gps.denied = False
                uav.sensors.gps.spoof_offset_m = (0.0, 0.0, 0.0)
                uav.sensors.imu.healthy = True

    return mutate


@pytest.mark.parametrize("case", range(50))
def test_random_fleets_lockstep(case):
    """50 seeded random fleets (1–64 UAVs) under adversarial mutations.

    Each case draws a fleet size and a mutation script (GPS denial,
    spoofing, IMU loss, camera degradation, motor failures, battery
    drains, mid-run healing) from its seed and demands exact agreement on
    every guarantee trace, gate output, reliability number, and mission
    verdict.
    """
    rng = np.random.default_rng(1000 + case)
    n_uavs = int(rng.integers(1, 65))
    seed = int(rng.integers(0, 1 << 31))
    scalar = build_three_uav_world(
        seed=seed, n_uavs=n_uavs, n_persons=0, engine="scalar"
    ).world
    vector = build_three_uav_world(
        seed=seed, n_uavs=n_uavs, n_persons=0, engine="vectorized"
    ).world
    steps = 12 if n_uavs > 16 else 40
    _run_lockstep(scalar, vector, steps, mutate=_random_mutator(seed))


@pytest.mark.parametrize("measure", sorted(ALL_MEASURES))
def test_safeml_measures_bit_identical(measure):
    """Every registered ECDF distance measure agrees bit-for-bit.

    Monitors are fitted on identical references and fed identical
    feature streams in both planes; the stacked distance path must
    reproduce the scalar per-feature computation exactly — distances,
    z-scores, uncertainty, and confidence level.
    """
    scalar = build_three_uav_world(seed=5, n_uavs=3, n_persons=0,
                                   engine="scalar").world
    vector = build_three_uav_world(seed=5, n_uavs=3, n_persons=0,
                                   engine="vectorized").world
    scalar_plane = build_assurance(scalar)
    batched_plane = build_assurance(vector)

    window = 8
    feature_rng = np.random.default_rng(99)
    features = feature_rng.normal(size=(40, 3))
    for plane in (scalar_plane, batched_plane):
        for i, uav_id in enumerate(plane.uav_ids):
            monitor = SafeMlMonitor(
                measure=measure,
                window_size=window,
                rng=np.random.default_rng(7 + i),
            )
            monitor.fit(
                np.random.default_rng(13 + i).normal(size=(4 * window, 3))
            )
            plane.set_safeml(uav_id, monitor)

    for step in range(2 * window):
        for plane in (scalar_plane, batched_plane):
            for uav_id in plane.uav_ids:
                plane.safeml_monitor(uav_id).observe(features[step])
        ta = scalar.step()
        tb = vector.step()
        ga = scalar_plane.step(ta)
        gb = batched_plane.step(tb)
        assert ga == gb
        _assert_planes_agree(scalar_plane, batched_plane, f"{measure} t={ta}")
    # The windows are full by now, so reports must exist and agree.
    for uav_id in scalar_plane.uav_ids:
        report = batched_plane.safeml_report(uav_id)
        assert report is not None
        _assert_reports_equal(
            scalar_plane.safeml_report(uav_id), report, measure
        )


def test_zero_uav_planes_agree():
    """Empty fleet: step is a no-op dict, decide raises like the scalar."""
    from repro.geo import EnuFrame, GeoPoint
    from repro.uav.world import World

    frame = EnuFrame(origin=GeoPoint(35.0, 33.0, 0.0))
    scalar = World(frame=frame, rng=np.random.default_rng(0), engine="scalar")
    vector = World(
        frame=frame, rng=np.random.default_rng(0), engine="vectorized"
    )
    scalar_plane = build_assurance(scalar)
    batched_plane = build_assurance(vector)
    assert scalar_plane.step(0.5) == {}
    assert batched_plane.step(0.5) == {}
    with pytest.raises(RuntimeError, match="no UAVs registered"):
        scalar_plane.decide()
    with pytest.raises(RuntimeError, match="no UAVs registered"):
        batched_plane.decide()


def test_single_uav_has_no_collaborators():
    """n=1: nearby_uavs_available stays False in both planes, forever."""
    scalar = build_three_uav_world(seed=2, n_uavs=1, n_persons=0,
                                   engine="scalar").world
    vector = build_three_uav_world(seed=2, n_uavs=1, n_persons=0,
                                   engine="vectorized").world
    scalar_plane, batched_plane = _run_lockstep(scalar, vector, 30)
    (uav_id,) = scalar_plane.uav_ids
    assert scalar_plane.evidence(uav_id)["nearby_uavs_available"] is False
    assert batched_plane.evidence(uav_id)["nearby_uavs_available"] is False


def test_engine_switch_vocabulary_matches_world():
    """build_assurance speaks the exact engine vocabulary World does."""
    world = build_three_uav_world(seed=0, n_persons=0).world
    with pytest.raises(ValueError, match="unknown engine"):
        build_assurance(world, engine="warp")
    assert build_assurance(world, engine="scalar").engine == "scalar"
    vec = build_three_uav_world(seed=0, n_persons=0, engine="vectorized").world
    assert build_assurance(vec).engine == "vectorized"
    # The batched plane refuses a scalar world: it needs fleet channels.
    with pytest.raises(ValueError, match="vectorized assurance"):
        build_assurance(world, engine="vectorized")


def test_compiled_network_matches_template_shape():
    """The compiled programs cover every ConSert and guarantee by name."""
    compiled = compiled_conserts()
    assert "uav" in compiled.fields
    assert compiled.order[-1] == "uav"  # top of the demand DAG
    for name in compiled.fields:
        assert len(compiled.programs[name]) == len(
            compiled.guarantee_names[name]
        )
    assert [g.value for g in compiled.uav_guarantees] == list(
        compiled.guarantee_names["uav"]
    )


def test_batched_plane_rejects_fleet_growth():
    """Adopting UAVs after the plane exists is an error, not silent skew."""
    from repro.uav.uav import Uav, UavSpec

    scenario = build_three_uav_world(seed=4, n_persons=0, engine="vectorized")
    world = scenario.world
    plane = build_assurance(world)
    world.add_uav(
        Uav(
            spec=UavSpec(uav_id="late", base_position=(0.0, 0.0, 0.0)),
            frame=world.frame,
            bus=world.bus,
            rng=np.random.default_rng(123),
        )
    )
    world.step()
    with pytest.raises(RuntimeError, match="fleet grew"):
        plane.step(world.time)


def test_guarantee_callbacks_fire_identically():
    """on_guarantee responses fire with identical payloads in both planes."""
    text = (SCENARIO_DIR / "fig5_battery_fault.json").read_text()
    scalar = load_scenario_json(text, engine="scalar")
    vector = load_scenario_json(text, engine="vectorized")
    scalar_plane = build_assurance(scalar.world)
    batched_plane = build_assurance(vector.world)
    fired: dict[str, list] = {"scalar": [], "batched": []}
    from repro.core.uav_network import UavGuarantee

    for label, plane in (("scalar", scalar_plane), ("batched", batched_plane)):
        for uav_id in plane.uav_ids:
            for guarantee in UavGuarantee:
                plane.on_guarantee(
                    uav_id,
                    guarantee,
                    lambda r, _label=label, _u=uav_id: fired[_label].append(
                        (_u, r.stamp, r.guarantee, r.previous)
                    ),
                )
    steps = int(round(T_END / scalar.world.dt))
    for _ in range(steps):
        ta = scalar.step()
        tb = vector.step()
        scalar_plane.step(ta)
        batched_plane.step(tb)
    assert fired["scalar"] == fired["batched"]
    assert fired["scalar"]  # the scenario actually causes transitions


def test_scenarios_exercise_assurance_relevant_faults():
    """Meta-check: the sweep crosses demotion-triggering fault types."""
    covered = set()
    for path in SCENARIOS:
        config = json.loads(path.read_text())
        for fault in config.get("faults", ()):
            if float(fault["at"]) < T_END:
                covered.add(fault["type"])
    assert {"battery_collapse", "gps_denial", "gps_spoof"} <= covered, (
        f"scenario sweep only covers {sorted(covered)}"
    )


# ---------------------------------------------------------------------------
# Sample-axis batching: the fig5 Monte-Carlo campaign, stacked
# ---------------------------------------------------------------------------


def test_mc_batched_samples_bit_identical():
    """Stacked fig5 rows reproduce the per-sample path to the bit.

    Covers both policies (SESAME threshold abort, naive swap-and-resume
    — the latter exercises the mid-run battery replacement under the
    vectorized engine) across distinct seeds and grid points in one
    stacked call.
    """
    from repro.experiments.fig5_batch import monte_carlo_batch
    from repro.experiments.monte_carlo import monte_carlo_sample
    from repro.harness.timing import PhaseTimer

    configs = [
        {"fault_time_s": 250.0, "soc_after_fault": 0.40, "seed": 3},
        {"fault_time_s": 350.0, "soc_after_fault": 0.40, "seed": 4},
        {"fault_time_s": 150.0, "soc_after_fault": 0.35, "seed": 5},
    ]
    seeds = [3, 4, 5]
    scalar = [
        monte_carlo_sample(dict(c), s, PhaseTimer())
        for c, s in zip(configs, seeds)
    ]
    batched = monte_carlo_batch(configs, seeds, PhaseTimer())
    assert batched == scalar  # dict equality == float bit equality here


def test_mc_campaign_fingerprint_unchanged_with_batching():
    """`batch=True` must not move the smoke-grid campaign fingerprint.

    The fingerprint covers every sample's (index, seed, config, result,
    status); the pinned value is the scalar golden from
    tests/data/golden_traces.json, so this also cross-checks the golden.
    """
    from repro.experiments.monte_carlo import MONTE_CARLO_CAMPAIGN
    from repro.harness.campaign import run_campaign

    serial = run_campaign(MONTE_CARLO_CAMPAIGN, grid="smoke", root_seed=0)
    batched = run_campaign(
        MONTE_CARLO_CAMPAIGN, grid="smoke", root_seed=0, batch=True
    )
    assert serial.fingerprint == batched.fingerprint
    golden_path = Path(__file__).parent / "data" / "golden_traces.json"
    golden = json.loads(golden_path.read_text())
    assert batched.fingerprint == golden["monte_carlo_smoke"]["fingerprint"]


def test_batch_fallback_recovers_per_sample():
    """A failing batch hook falls back to the fault-tolerant path."""
    from repro.harness.campaign import CampaignExperiment, run_campaign

    def sample_fn(config, seed, timer):
        return {"value": config["x"] * 10 + seed % 7}

    def bad_batch(configs, seeds, timer):
        raise RuntimeError("stacked path exploded")

    def experiment(batch_fn):
        return CampaignExperiment(
            name="batch-fallback-proof",
            sample_fn=sample_fn,
            grids=lambda preset: [{"x": x} for x in range(4)],
            batch_fn=batch_fn,
        )

    plain = run_campaign(experiment(None), grid="default")
    fallen = run_campaign(experiment(bad_batch), grid="default", batch=True)
    assert fallen.fingerprint == plain.fingerprint
    assert all(r.status == "ok" for r in fallen.records)


def test_batch_length_mismatch_falls_back():
    """A batch hook returning the wrong arity never corrupts records."""
    from repro.harness.campaign import CampaignExperiment, run_campaign

    def sample_fn(config, seed, timer):
        return {"value": config["x"]}

    def short_batch(configs, seeds, timer):
        return [{"value": c["x"]} for c in configs[:-1]]

    experiment = CampaignExperiment(
        name="batch-arity-proof",
        sample_fn=sample_fn,
        grids=lambda preset: [{"x": x} for x in range(3)],
        batch_fn=short_batch,
    )
    result = run_campaign(experiment, grid="default", batch=True)
    assert [r.result["value"] for r in result.records] == [0, 1, 2]
    assert all(r.status == "ok" for r in result.records)


def test_assurance_scale_point_engine_invariant():
    """The fleet-scale assurance sample reports identical mission and
    assurance facts on both engines (only wall-clock fields may differ)."""
    from repro.experiments.fleet_scale import run_assurance_scale_point

    deterministic = (
        "seed", "n_uavs", "coverage_fraction", "duration_s", "sim_time_s",
        "persons_found", "persons_total", "assurance_cycles",
        "final_verdict", "guarantee_transitions",
    )
    scalar = run_assurance_scale_point(3, seed=21, engine="scalar",
                                       max_time_s=20.0)
    batched = run_assurance_scale_point(3, seed=21, engine="vectorized",
                                        max_time_s=20.0)
    assert scalar["assurance_engine"] == "scalar"
    assert batched["assurance_engine"] == "vectorized"
    for key in deterministic:
        assert scalar[key] == batched[key], key
    assert batched["assurance_cycles"] > 0


def test_assurance_smoke_grid_cycles_the_plane():
    """The CI grid actually exercises the 50-UAV batched plane."""
    from repro.experiments.fleet_scale import fleet_scale_grid

    grid = fleet_scale_grid("assurance-smoke")
    assert {c["n_uavs"] for c in grid} == {3, 50}
    assert all(c["assurance"] and c["engine"] == "vectorized" for c in grid)
