"""Golden swarm-tasking regression: one pinned faulted scenario.

The property suite proves the swarm stack is *self*-consistent (same
seed ⇒ same ledger); this file pins the *absolute* behaviour: the full
task ledger, per-PoI latency trace, ConSert decision log and summary
metrics of one K=2, ρ=3, P=50 scenario — the same faulted point the
``swarm-sizing`` smoke grid runs in CI — are stored hex-float in
``tests/data/golden_swarm_trace.json`` and must reproduce exactly. A
change that shifts protocol timing or recovery semantics now fails
against the golden even if it stays internally deterministic.

If a change is *supposed* to move the trace (timeout policy change,
assignment-order fix), regenerate and review the diff like any other
code:

    PYTHONPATH=src python tests/test_golden_swarm.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.swarm.sim import run_swarm

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_swarm_trace.json"

#: The swarm-sizing smoke grid's faulted point (see
#: ``repro.swarm.experiment.swarm_sizing_grid``): long enough for the
#: scripted follower loss (30 s) and leader demotion (60 s) to bite and
#: for the recovery — task transfer, re-homing — to finish servicing.
CONFIG = {
    "k_leaders": 2,
    "rho": 3,
    "n_pois": 50,
    "area_m": 400.0,
    "horizon_s": 150.0,
    "faults": [
        {"type": "follower_loss", "uav": "f00_01", "at": 30.0},
        {"type": "leader_demotion", "uav": "lead01", "at": 60.0},
    ],
}
SEED = 123


def hexfloat(value):
    """Recursively hex-encode floats; bit-exact and JSON-safe."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return {key: hexfloat(value[key]) for key in value}
    if isinstance(value, (list, tuple)):
        return [hexfloat(item) for item in value]
    return value


def collect_swarm_trace() -> dict:
    """Run the pinned scenario; everything measurable, hex-float."""
    run = run_swarm(dict(CONFIG), seed=SEED)
    return {
        "config": CONFIG,
        "seed": SEED,
        "ledger_fingerprint": run.ledger_fingerprint,
        "ledger": hexfloat(run.ledger.to_dict()),
        "latency_trace": hexfloat(run.latency_trace),
        "decisions": hexfloat(run.decisions),
        "metrics": hexfloat(run.metrics),
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.is_file(), (
        f"{GOLDEN_PATH} missing — regenerate with "
        "`PYTHONPATH=src python tests/test_golden_swarm.py`"
    )
    return json.loads(GOLDEN_PATH.read_text())


def test_swarm_trace_pinned(golden):
    # Hex-float encoding leaves no tolerance to hide behind: the run
    # must reproduce the golden to the last bit.
    assert collect_swarm_trace() == golden


def test_golden_pins_real_recovery(golden):
    # Meta-check: the pinned scenario actually exercises the interesting
    # paths — a golden where nothing fails would pin nothing worth
    # pinning.
    metrics = golden["metrics"]
    assert metrics["serviced"] > 0
    assert metrics["leader"]["follower_deaths"] >= 1
    assert metrics["follower"]["rehomes"] >= 1
    assert metrics["squads_lost"] == ["lead01"]
    outcomes = {
        assignment["outcome"]
        for task in golden["ledger"].values()
        for assignment in task["assignments"]
    }
    assert "confirmed" in outcomes
    assert "rehome" in outcomes
    # Every verdict the mission decider can reach under these faults.
    assert "swarm_rehome_needed" in golden["metrics"]["verdicts"]


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(collect_swarm_trace(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
