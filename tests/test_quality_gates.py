"""Repository-wide quality gates.

Structural checks a downstream adopter relies on: the ConSert network's
monotonicity (more evidence never yields a weaker guarantee), docstring
coverage on the public API, and layering (substrates never import
technologies).
"""

import importlib
import inspect
import pkgutil

from hypothesis import given, settings, strategies as st

import repro
from repro.core.uav_network import UavConSertNetwork

EVIDENCE_SETTERS = [
    ("set_gps_quality_ok", True),
    ("set_camera_healthy", True),
    ("set_safeml_confidence_ok", True),
    ("set_comm_links_ok", True),
    ("set_nearby_uavs_available", True),
    ("set_drone_detection_ok", True),
]


def apply_assignment(network, bools, reliability):
    for (setter, _), value in zip(EVIDENCE_SETTERS, bools):
        getattr(network, setter)(value)
    network.set_attack_detected(not bools[-1])
    network.set_reliability_level(reliability)


def guarantee_rank(network) -> int:
    """0 = strongest; larger = weaker."""
    offered = network.uav.evaluate()
    return network.uav.guarantee_names().index(offered.name)


class TestConsertMonotonicity:
    @given(
        bools=st.lists(st.booleans(), min_size=7, max_size=7),
        reliability=st.sampled_from(["high", "medium", "low"]),
        flip=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=120, deadline=None)
    def test_more_evidence_never_weakens_guarantee(self, bools, reliability, flip):
        """Flipping any single evidence to True is never worse."""
        network = UavConSertNetwork(uav_id="u")
        apply_assignment(network, bools, reliability)
        base_rank = guarantee_rank(network)
        improved = list(bools)
        improved[flip] = True
        apply_assignment(network, improved, reliability)
        assert guarantee_rank(network) <= base_rank

    @given(bools=st.lists(st.booleans(), min_size=7, max_size=7))
    @settings(max_examples=60, deadline=None)
    def test_reliability_ordering_respected(self, bools):
        """For any fixed evidence, better reliability is never worse."""
        ranks = {}
        for reliability in ("low", "medium", "high"):
            network = UavConSertNetwork(uav_id="u")
            apply_assignment(network, bools, reliability)
            ranks[reliability] = guarantee_rank(network)
        assert ranks["high"] <= ranks["medium"] <= ranks["low"]


def iter_public_members():
    """Yield (module, name, object) for the public API surface."""
    prefix = repro.__name__ + "."
    for module_info in pkgutil.walk_packages(repro.__path__, prefix):
        if module_info.name.endswith("__main__"):
            continue
        module = importlib.import_module(module_info.name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield module.__name__, name, obj


class TestDocumentation:
    def test_every_public_item_has_a_docstring(self):
        missing = [
            f"{module}.{name}"
            for module, name, obj in iter_public_members()
            if not (obj.__doc__ or "").strip()
        ]
        assert missing == [], f"undocumented public items: {missing}"

    def test_every_module_has_a_docstring(self):
        prefix = repro.__name__ + "."
        missing = []
        for module_info in pkgutil.walk_packages(repro.__path__, prefix):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                missing.append(module_info.name)
        assert missing == [], f"undocumented modules: {missing}"


class TestLayering:
    SUBSTRATES = ("repro.uav", "repro.middleware", "repro.geo")
    TECHNOLOGIES = (
        "repro.core",
        "repro.safedrones",
        "repro.safeml",
        "repro.deepknowledge",
        "repro.sinadra",
        "repro.security",
        "repro.localization",
        "repro.platform",
        "repro.sar",
        "repro.experiments",
    )

    def test_substrates_never_import_technologies(self):
        violations = []
        prefix = repro.__name__ + "."
        for module_info in pkgutil.walk_packages(repro.__path__, prefix):
            name = module_info.name
            if not name.startswith(self.SUBSTRATES):
                continue
            module = importlib.import_module(name)
            source = inspect.getsource(module)
            for tech in self.TECHNOLOGIES:
                if f"from {tech}" in source or f"import {tech}" in source:
                    violations.append((name, tech))
        assert violations == [], f"layering violations: {violations}"
