"""Golden-trace regression suite: the paper's headline numbers, pinned.

Every experiment here is a seeded, deterministic simulation, so its
headline metrics are reproducible to the last bit on a given platform.
These tests pin them at the default seeds: a refactor that *silently*
shifts a reported number now fails loudly instead of drifting
EXPERIMENTS.md away from reality.

Exact equality is asserted for discrete outcomes (counts, booleans,
times quantized to the simulation step); floats use a tight relative
tolerance (1e-6) purely to absorb cross-platform libm variance.

If a change is *supposed* to move these numbers (scenario change, model
fix), regenerate the goldens and review the diff like any other code:

    PYTHONPATH=src python tests/test_golden_traces.py

then update EXPERIMENTS.md to match.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_traces.json"
REL = 1e-6


def collect_fleet_trace(engine: str = "vectorized") -> dict:
    """A 10-UAV SAR coverage mission, pinned to the bit.

    Floats are stored as ``float.hex()`` strings, so the comparison is
    exact rather than tolerance-based: the vectorized fleet engine
    promises bit-identical trajectories to the scalar reference, and this
    section (generated vectorized, also checked against a scalar run)
    holds it to that.
    """
    from repro.experiments.common import build_three_uav_world
    from repro.sar.mission import SarMission

    scenario = build_three_uav_world(
        seed=21, n_persons=8, n_uavs=10, engine=engine
    )
    world = scenario.world
    mission = SarMission(world=world)
    mission.assign_paths()
    metrics = mission.run(max_time_s=400.0)
    return {
        "positions": {
            uav_id: [c.hex() for c in uav.dynamics.position]
            for uav_id, uav in world.uavs.items()
        },
        "soc": {
            uav_id: uav.battery.soc.hex() for uav_id, uav in world.uavs.items()
        },
        "temp_c": {
            uav_id: uav.battery.temp_c.hex()
            for uav_id, uav in world.uavs.items()
        },
        "modes": {uav_id: uav.mode.name for uav_id, uav in world.uavs.items()},
        "detections": [
            [p.person_id, p.detected_by, p.detected_at]
            for p in world.persons
            if p.detected
        ],
        "coverage_fraction": metrics.coverage_fraction,
        "persons_found": metrics.persons_found,
        "persons_total": metrics.persons_total,
        "duration_s": metrics.duration_s,
    }


def collect_traces() -> dict:
    """Run every pinned experiment at its default seed; gather headlines."""
    from repro.experiments import (
        run_fig5_battery_experiment,
        run_fig6_spoofing_experiment,
        run_fig7_collaborative_landing,
        run_sar_accuracy_experiment,
    )
    from repro.experiments.monte_carlo import MONTE_CARLO_CAMPAIGN
    from repro.harness.campaign import run_campaign

    fig5 = run_fig5_battery_experiment(seed=3)
    sar = run_sar_accuracy_experiment(seed=5)
    fig6 = run_fig6_spoofing_experiment(seed=9)
    fig7 = run_fig7_collaborative_landing(seed=13)
    mc = run_campaign(MONTE_CARLO_CAMPAIGN, grid="smoke", root_seed=0)
    return {
        "fig5": {
            "nominal_mission_s": fig5.nominal_mission_s,
            "availability_with": fig5.availability_with,
            "availability_without": fig5.availability_without,
            "completion_improvement": fig5.completion_improvement,
            "threshold_crossing_time": fig5.with_sesame.threshold_crossing_time,
            "mission_complete_time_with": fig5.with_sesame.mission_complete_time,
            "abort_time_without": fig5.without_sesame.abort_time,
        },
        "sar_accuracy": {
            "uncertainty_high": sar.uncertainty_high,
            "uncertainty_final": sar.uncertainty_final,
            "accuracy_with_sesame": sar.accuracy_with_sesame,
            "accuracy_without_sesame": sar.accuracy_without_sesame,
            "final_altitude_m": sar.final_altitude_m,
        },
        "fig6": {
            "max_deviation_m": fig6.max_deviation_m,
            "eddi_latency_s": fig6.eddi_latency_s,
            "sensor_latency_s": fig6.sensor_latency_s,
            "ids_alert_count": fig6.ids_alert_count,
        },
        "fig7": {
            "landed": fig7.cl_report.landed,
            "final_error_m": fig7.cl_report.final_error_m,
            "baseline_error_m": fig7.baseline_error_m,
            "mean_estimate_error_m": fig7.mean_estimate_error_m,
            "n_sightings": fig7.n_sightings,
        },
        "monte_carlo_smoke": {
            "fingerprint": mc.fingerprint,
            "mean_advantage": sum(
                r["availability_with"] - r["availability_without"]
                for r in mc.results
            )
            / len(mc.results),
        },
        "fleet_10_vectorized": collect_fleet_trace("vectorized"),
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.is_file(), (
        f"{GOLDEN_PATH} missing — regenerate with "
        "`PYTHONPATH=src python tests/test_golden_traces.py`"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def measured() -> dict:
    return collect_traces()


def _assert_matches(measured: dict, golden: dict, section: str) -> None:
    assert set(measured) == set(golden), f"{section}: metric set changed"
    for name, pinned in golden.items():
        value = measured[name]
        label = f"{section}.{name}"
        if isinstance(pinned, bool) or isinstance(pinned, int):
            assert value == pinned, f"{label}: {value!r} != pinned {pinned!r}"
        elif pinned is None:
            assert value is None, f"{label}: {value!r} != pinned None"
        elif isinstance(pinned, float):
            assert value == pytest.approx(pinned, rel=REL), (
                f"{label}: {value!r} drifted from pinned {pinned!r}"
            )
        else:
            assert value == pinned, f"{label}: {value!r} != pinned {pinned!r}"


class TestGoldenTraces:
    def test_fig5_headlines_pinned(self, measured, golden):
        _assert_matches(measured["fig5"], golden["fig5"], "fig5")

    def test_sar_accuracy_headlines_pinned(self, measured, golden):
        _assert_matches(
            measured["sar_accuracy"], golden["sar_accuracy"], "sar_accuracy"
        )

    def test_fig6_headlines_pinned(self, measured, golden):
        _assert_matches(measured["fig6"], golden["fig6"], "fig6")

    def test_fig7_headlines_pinned(self, measured, golden):
        _assert_matches(measured["fig7"], golden["fig7"], "fig7")

    def test_fleet_trace_pinned(self, measured, golden):
        _assert_matches(
            measured["fleet_10_vectorized"],
            golden["fleet_10_vectorized"],
            "fleet_10_vectorized",
        )

    def test_fleet_trace_reproduced_by_scalar_engine(self, golden):
        # The pinned trace was generated by the vectorized engine; the
        # scalar reference must reproduce it bit for bit (the hex-float
        # encoding leaves no tolerance to hide behind).
        _assert_matches(
            collect_fleet_trace("scalar"),
            golden["fleet_10_vectorized"],
            "fleet_10_vectorized(scalar)",
        )

    def test_monte_carlo_campaign_fingerprint_pinned(self, measured, golden):
        # The campaign fingerprint covers every sample's full result dict,
        # so this one line pins the whole smoke sweep sample-for-sample.
        assert (
            measured["monte_carlo_smoke"]["fingerprint"]
            == golden["monte_carlo_smoke"]["fingerprint"]
        )
        assert measured["monte_carlo_smoke"]["mean_advantage"] == pytest.approx(
            golden["monte_carlo_smoke"]["mean_advantage"], rel=REL
        )


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(collect_traces(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
