"""The procedural scenario generator: determinism, validity, profiles.

The generator's contract is threefold: same seed ⇒ byte-identical JSON
(including across processes — the manifest records only the seed, so the
scenario must be reconstructible anywhere), every emitted config loads
and lints clean, and each profile stays inside its declared envelope.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.fuzz.generator import (
    PROFILES,
    ScenarioGenerator,
    get_profile,
    scenario_to_json,
)
from repro.scenario import lint_scenario, load_scenario_json

SRC = str(Path(__file__).resolve().parent.parent / "src")
SEEDS = range(25)


class TestDeterminism:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_same_seed_same_bytes(self, profile):
        for seed in SEEDS:
            first = ScenarioGenerator(seed).generate_json(profile)
            second = ScenarioGenerator(seed).generate_json(profile)
            assert first == second

    def test_different_seeds_differ(self):
        texts = {ScenarioGenerator(seed).generate_json("default")
                 for seed in range(20)}
        assert len(texts) == 20

    def test_profiles_draw_differently_from_same_seed(self):
        texts = {ScenarioGenerator(99).generate_json(p) for p in PROFILES}
        assert len(texts) == len(PROFILES)

    def test_identical_json_across_processes(self):
        # The cross-process half of the contract: a fresh interpreter
        # with the same seed emits the same bytes this process does.
        seed, profile = 4711, "default"
        local = ScenarioGenerator(seed).generate_json(profile)
        script = (
            "from repro.harness.fuzz.generator import ScenarioGenerator; "
            f"import sys; sys.stdout.write("
            f"ScenarioGenerator({seed}).generate_json({profile!r}))"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        ).stdout
        assert remote == local


class TestValidity:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_generated_scenarios_load_and_lint_clean(self, profile):
        for seed in SEEDS:
            text = ScenarioGenerator(seed).generate_json(profile)
            config = json.loads(text)
            assert lint_scenario(config) == []
            scenario = load_scenario_json(text)
            assert sorted(scenario.world.uavs) == sorted(
                uav["id"] for uav in config["uavs"]
            )
            assert len(scenario.faults.faults) == len(config["faults"])

    def test_canonical_serialisation_round_trips(self):
        config = ScenarioGenerator(3).generate("smoke")
        text = scenario_to_json(config)
        assert json.loads(text) == config
        assert scenario_to_json(json.loads(text)) == text


class TestProfiles:
    @pytest.mark.parametrize("profile_name", sorted(PROFILES))
    def test_draws_respect_the_profile_envelope(self, profile_name):
        profile = PROFILES[profile_name]
        for seed in SEEDS:
            config = ScenarioGenerator(seed).generate(profile_name)
            assert profile.uavs[0] <= len(config["uavs"]) <= profile.uavs[1]
            assert config["dt"] in profile.dt_choices
            assert len(config["faults"]) <= profile.max_faults
            assert len(config["attacks"]) <= profile.max_attacks
            assert (
                profile.persons[0] <= config["persons"] <= profile.persons[1]
            )
            # Horizon is a dt multiple within (roughly) the declared band.
            steps = config["horizon_s"] / config["dt"]
            assert steps == pytest.approx(round(steps))
            fault_types = {fault["type"] for fault in config["faults"]}
            assert fault_types <= set(profile.fault_types)
            assert f"seed={seed}" in config["description"]

    def test_smoke_profile_never_draws_comm_faults_or_attacks(self):
        for seed in SEEDS:
            config = ScenarioGenerator(seed).generate("smoke")
            assert config["attacks"] == []
            assert not {f["type"] for f in config["faults"]} & {
                "comm_blackout", "comm_degradation", "network_partition"
            }

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="unknown fuzz profile"):
            get_profile("nightmare")

    def test_partition_groups_are_disjoint_and_known(self):
        # Hunt for generated partitions and check their shape.
        found = 0
        for seed in range(120):
            config = ScenarioGenerator(seed).generate("hostile")
            ids = {uav["id"] for uav in config["uavs"]}
            for fault in config["faults"]:
                if fault["type"] != "network_partition":
                    continue
                found += 1
                group_a, group_b = set(fault["group_a"]), set(fault["group_b"])
                assert group_a and group_b
                assert not group_a & group_b
                assert group_a | group_b <= ids
        assert found > 0, "no partitions drawn in 120 hostile scenarios"
