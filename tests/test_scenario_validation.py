"""Validation tests: every archived scenario loads; loader errors name fields."""

import json
from pathlib import Path

import pytest

from repro.scenario import ScenarioError, load_scenario, load_scenario_json

SCENARIOS = Path(__file__).resolve().parent.parent / "scenarios"
SCENARIO_FILES = sorted(SCENARIOS.glob("*.json"))


class TestArchivedScenarios:
    def test_archive_is_not_empty(self):
        assert SCENARIO_FILES

    @pytest.mark.parametrize(
        "path", SCENARIO_FILES, ids=[p.stem for p in SCENARIO_FILES]
    )
    def test_roundtrips_through_the_loader(self, path):
        text = path.read_text()
        scenario = load_scenario_json(text)
        config = json.loads(text)
        assert sorted(scenario.world.uavs) == sorted(
            u["id"] for u in config["uavs"]
        )
        assert len(scenario.world.persons) == config.get("persons", 0)
        assert len(scenario.faults.faults) == len(config.get("faults", []))
        # A re-serialised config loads to the same fleet.
        again = load_scenario_json(json.dumps(scenario.config))
        assert sorted(again.world.uavs) == sorted(scenario.world.uavs)

    @pytest.mark.parametrize(
        "path", SCENARIO_FILES, ids=[p.stem for p in SCENARIO_FILES]
    )
    def test_scenarios_step_cleanly(self, path):
        scenario = load_scenario_json(path.read_text())
        scenario.run_until(2.0)
        assert scenario.world.time >= 2.0


BASE = {
    "seed": 1,
    "uavs": [{"id": "uav1", "base": [0, 0, 0]}],
}


def _mutated(**overrides):
    config = json.loads(json.dumps(BASE))
    config.update(overrides)
    return config


class TestErrorsNameTheOffendingField:
    """Every loader rejection must point at the field that caused it."""

    @pytest.mark.parametrize(
        "config, fragment",
        [
            (_mutated(seed="not-a-number"), "seed"),
            (_mutated(dt="fast"), "dt"),
            (_mutated(dt=0), "dt"),
            (_mutated(area_size_m=[100]), "area_size_m"),
            (_mutated(area_size_m=[100, "wide"]), "area_size_m[1]"),
            (_mutated(persons="many"), "persons"),
            (_mutated(environment={"wind_mean_mps": "breezy"}),
             "environment.wind_mean_mps"),
            (_mutated(environment={"ambient_c": None}),
             "environment.ambient_c"),
            (_mutated(uavs=[{"base": [0, 0, 0]}]), "uavs[0]"),
            (_mutated(uavs=[{"id": "a"}, {"id": "a"}]), "uavs[1].id"),
            (_mutated(uavs=[{"id": "u", "base": [0, 0]}]), "uavs[0] (u).base"),
            (_mutated(uavs=[{"id": "u", "rotors": "six"}]),
             "uavs[0] (u).rotors"),
            (_mutated(uavs=[{"id": "u", "max_speed_mps": "fast"}]),
             "uavs[0] (u).max_speed_mps"),
            (_mutated(faults=[{"uav": "uav1", "at": 1.0}]), "faults[0]"),
            (_mutated(faults=[{"type": "imu_failure", "uav": "uav1",
                               "at": "soon"}]), "faults[0].at"),
            (_mutated(faults=[{"type": "battery_collapse", "uav": "uav1",
                               "at": 1.0, "soc_drop_to": "low"}]),
             "faults[0].soc_drop_to"),
            (_mutated(faults=[{"type": "gps_denial", "uav": "uav1",
                               "at": 1.0, "duration": "short"}]),
             "faults[0].duration"),
            (_mutated(faults=[{"type": "gps_spoof", "uav": "uav1",
                               "at": 1.0}]), "faults[0].offset"),
            (_mutated(faults=[{"type": "gps_spoof", "uav": "uav1",
                               "at": 1.0, "offset": [1, "east", 0]}]),
             "faults[0].offset[1]"),
            (_mutated(faults=[{"type": "camera_degradation", "uav": "uav1",
                               "at": 1.0, "rate": []}]), "faults[0].rate"),
            (_mutated(faults=[{"type": "warp_drive", "uav": "uav1",
                               "at": 1.0}]), "faults[0]"),
            (_mutated(faults=[{"type": "imu_failure", "uav": "ghost",
                               "at": 1.0}]), "faults[0].uav"),
            (_mutated(attacks=[{"type": "emp"}]), "attacks[0].type"),
            (_mutated(attacks=[{"type": "ros_spoofing",
                                "rate_hz": "often"}]),
             "attacks[0].rate_hz"),
            (_mutated(attacks=[{"type": "ros_spoofing", "start": "dawn"}]),
             "attacks[0].start"),
            (_mutated(attacks=[{"type": "ros_spoofing", "sender": "ghost"}]),
             "attacks[0].sender"),
            (_mutated(uavs=[{"id": "u", "mission": []}]),
             "uavs[0] (u).mission"),
            (_mutated(uavs=[{"id": "u", "mission": [[1, 2]]}]),
             "uavs[0] (u).mission[0]"),
            (_mutated(faults=[{"type": "comm_blackout", "uav": "uav1",
                               "at": 1.0}]), "faults[0].duration"),
            (_mutated(faults=[{"type": "comm_blackout", "uav": "ghost",
                               "at": 1.0, "duration": 5}]), "faults[0].uav"),
            (_mutated(faults=[{"type": "comm_degradation", "uav": "uav1",
                               "at": 1.0, "loss": 1.5}]), "faults[0].loss"),
            (_mutated(faults=[{"type": "network_partition", "at": 1.0,
                               "group_a": [], "group_b": ["uav1"]}]),
             "faults[0].group_a"),
            (_mutated(faults=[{"type": "network_partition", "at": 1.0,
                               "group_a": ["uav1"], "group_b": ["ghost"]}]),
             "faults[0].group_b"),
            (_mutated(uavs=[{"id": "a", "base": [0, 0, 0]},
                            {"id": "b", "base": [5, 0, 0]}],
                      faults=[{"type": "network_partition", "at": 1.0,
                               "group_a": ["a", "b"], "group_b": ["b"]}]),
             "faults[0].group_b"),
        ],
        ids=lambda v: v if isinstance(v, str) else None,
    )
    def test_error_message_names_field(self, config, fragment):
        with pytest.raises(ScenarioError) as excinfo:
            load_scenario(config)
        assert fragment in str(excinfo.value)

    def test_second_fault_reports_its_own_index(self):
        config = _mutated(
            faults=[
                {"type": "imu_failure", "uav": "uav1", "at": 1.0},
                {"type": "imu_failure", "uav": "uav1", "at": "later"},
            ]
        )
        with pytest.raises(ScenarioError, match=r"faults\[1\]\.at"):
            load_scenario(config)

    def test_comm_faults_build_a_degraded_bus(self):
        from repro.middleware.degraded import DegradedBus

        scenario = load_scenario(
            _mutated(
                uavs=[{"id": "a", "base": [0, 0, 0]},
                      {"id": "b", "base": [5, 0, 0]}],
                faults=[
                    {"type": "comm_blackout", "uav": "a", "at": 1.0,
                     "duration": 2.0},
                    {"type": "network_partition", "at": 2.0,
                     "group_a": ["a"], "group_b": ["b"], "duration": 1.0},
                ],
            )
        )
        assert isinstance(scenario.world.bus, DegradedBus)
        scenario.run_until(4.0)

    def test_lint_flags_unknown_keys_without_raising(self):
        from repro.scenario import lint_scenario

        problems = lint_scenario(
            _mutated(fautls=[], chaos={"mode": "warp"})
        )
        assert any("fautls" in p for p in problems)
        assert any("chaos.mode" in p for p in problems)

    def test_lint_clean_scenario_reports_nothing(self):
        from repro.scenario import lint_scenario

        assert lint_scenario(_mutated()) == []

    def test_valid_config_still_loads_after_hardening(self):
        scenario = load_scenario(
            _mutated(
                dt=0.25,
                area_size_m=[120, 80],
                persons=2,
                environment={"wind_mean_mps": 4.0},
                faults=[{"type": "motor_failure", "uav": "uav1", "at": 1.0}],
                attacks=[{"type": "ros_spoofing", "topic": "/uav1/pose",
                          "sender": "uav1", "start": 0.5, "rate_hz": 2.0}],
            )
        )
        assert scenario.world.dt == 0.25
        scenario.run_until(1.5)
        assert scenario.world.uavs["uav1"].motors_failed == 1
