"""Unit tests for the CTMC reliability engine."""

import numpy as np
import pytest

from repro.safedrones.markov import (
    ContinuousMarkovChain,
    MarkovModelError,
    parallel_reliability,
    series_reliability,
)


def two_state(rate=0.1):
    return ContinuousMarkovChain(
        states=["up", "down"],
        q=np.array([[0.0, rate], [0.0, 0.0]]),
        absorbing=frozenset({"down"}),
    )


class TestConstruction:
    def test_rows_sum_to_zero(self):
        chain = two_state()
        assert np.allclose(chain.q.sum(axis=1), 0.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(MarkovModelError):
            ContinuousMarkovChain(states=["a", "b"], q=np.zeros((3, 3)))

    def test_rejects_duplicate_states(self):
        with pytest.raises(MarkovModelError):
            ContinuousMarkovChain(states=["a", "a"], q=np.zeros((2, 2)))

    def test_rejects_negative_rates(self):
        with pytest.raises(MarkovModelError):
            ContinuousMarkovChain(
                states=["a", "b"], q=np.array([[0.0, -1.0], [0.0, 0.0]])
            )

    def test_rejects_unknown_absorbing(self):
        with pytest.raises(MarkovModelError):
            ContinuousMarkovChain(
                states=["a", "b"], q=np.zeros((2, 2)), absorbing=frozenset({"zzz"})
            )

    def test_rejects_leaky_absorbing_state(self):
        with pytest.raises(MarkovModelError):
            ContinuousMarkovChain(
                states=["a", "b"],
                q=np.array([[0.0, 1.0], [1.0, 0.0]]),
                absorbing=frozenset({"b"}),
            )


class TestTransient:
    def test_exponential_decay_closed_form(self):
        rate = 0.05
        chain = two_state(rate)
        for t in (0.0, 1.0, 10.0, 100.0):
            pof = chain.failure_probability(np.array([1.0, 0.0]), t)
            assert pof == pytest.approx(1.0 - np.exp(-rate * t), rel=1e-9, abs=1e-12)

    def test_distribution_stays_normalised(self):
        chain = two_state()
        pt = chain.transient(np.array([1.0, 0.0]), 37.0)
        assert pt.sum() == pytest.approx(1.0)
        assert (pt >= -1e-12).all()

    def test_transient_from_named_state(self):
        chain = two_state(0.2)
        pt = chain.transient_from("down", 5.0)
        assert pt[chain.index("down")] == pytest.approx(1.0)

    def test_rejects_bad_p0(self):
        chain = two_state()
        with pytest.raises(MarkovModelError):
            chain.transient(np.array([0.7, 0.7]), 1.0)

    def test_rejects_negative_time(self):
        chain = two_state()
        with pytest.raises(MarkovModelError):
            chain.transient(np.array([1.0, 0.0]), -1.0)

    def test_reliability_complements_pof(self):
        chain = two_state(0.03)
        p0 = np.array([1.0, 0.0])
        assert chain.reliability(p0, 10.0) == pytest.approx(
            1.0 - chain.failure_probability(p0, 10.0)
        )


class TestMttf:
    def test_exponential_mttf(self):
        chain = two_state(0.01)
        assert chain.mttf("up") == pytest.approx(100.0)

    def test_mttf_of_absorbing_state_is_zero(self):
        chain = two_state()
        assert chain.mttf("down") == 0.0

    def test_two_stage_chain_mttf_adds(self):
        lam = 0.02
        chain = ContinuousMarkovChain(
            states=["a", "b", "fail"],
            q=np.array(
                [[0.0, lam, 0.0], [0.0, 0.0, lam], [0.0, 0.0, 0.0]]
            ),
            absorbing=frozenset({"fail"}),
        )
        assert chain.mttf("a") == pytest.approx(2.0 / lam)


class TestScaled:
    def test_scaling_accelerates_failure(self):
        chain = two_state(0.01)
        fast = chain.scaled(10.0)
        p0 = np.array([1.0, 0.0])
        assert fast.failure_probability(p0, 10.0) > chain.failure_probability(p0, 10.0)

    def test_scaled_equivalent_to_time_dilation(self):
        chain = two_state(0.01)
        p0 = np.array([1.0, 0.0])
        assert chain.scaled(3.0).failure_probability(p0, 5.0) == pytest.approx(
            chain.failure_probability(p0, 15.0)
        )

    def test_rejects_negative_factor(self):
        with pytest.raises(MarkovModelError):
            two_state().scaled(-1.0)


class TestCompositions:
    def test_series_reliability(self):
        assert series_reliability([0.9, 0.9]) == pytest.approx(0.81)

    def test_parallel_reliability(self):
        assert parallel_reliability([0.9, 0.9]) == pytest.approx(0.99)

    def test_series_bounded_by_weakest(self):
        assert series_reliability([0.5, 0.99]) <= 0.5

    def test_parallel_at_least_best(self):
        assert parallel_reliability([0.5, 0.99]) >= 0.99

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            series_reliability([1.5])
        with pytest.raises(ValueError):
            parallel_reliability([-0.1])
