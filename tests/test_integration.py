"""Integration tests: the full stack wired together.

These exercise the end-to-end flows the paper demonstrates on its
platform: a complete SAR mission with EDDIs attached to every UAV, the
spoofing-detection-to-collaborative-landing response chain, and the
design-time-to-runtime ODE package flow.
"""


import numpy as np

from repro.core.decider import MissionDecider, MissionVerdict
from repro.core.eddi import Eddi, MonitorAdapter
from repro.core.ode import OdePackage
from repro.core.uav_network import UavConSertNetwork, UavGuarantee
from repro.experiments.common import build_three_uav_world
from repro.localization.collaborative import CollaborativeLocalizer, Sighting
from repro.localization.detection import DroneDetector
from repro.localization.landing import GuidedLandingController
from repro.middleware.attacks import SpoofingAttack
from repro.platform.database import DatabaseManager
from repro.platform.gcs import GroundControlStation
from repro.platform.task_manager import TaskManager
from repro.platform.uav_manager import UavManager
from repro.sar.mission import SarMission
from repro.security.attack_trees import ros_spoofing_attack_tree
from repro.security.broker import MqttBroker
from repro.security.eddi import SecurityEddi
from repro.security.ids import IntrusionDetectionSystem
from repro.safedrones.monitor import SafeDronesMonitor


class TestFullPlatformMission:
    def test_sar_mission_through_platform_services(self):
        scenario = build_three_uav_world(seed=1, n_persons=5)
        world = scenario.world
        db = DatabaseManager()
        manager = UavManager(bus=world.bus, database=db)
        for uav in world.uavs.values():
            manager.connect(uav)
        gcs = GroundControlStation(bus=world.bus, uav_manager=manager)
        for uav_id in world.uavs:
            gcs.watch_uav(uav_id)
        tasks = TaskManager(uav_manager=manager)
        tasks.execute(
            "sar_coverage",
            {"area_size_m": world.area_size_m, "altitude_m": 20.0},
        )
        mission = SarMission(world=world, altitude_m=20.0)
        mission.metrics.started_at = world.time
        while not mission.mission_complete and world.time < 1500.0:
            mission.step()
        assert mission.mission_complete
        assert mission.metrics.find_rate > 0.4
        # The platform recorded locations for every UAV.
        for uav_id in world.uavs:
            assert db.get("uav_locations", uav_id) is not None

    def test_eddi_fleet_with_mission_decider(self):
        scenario = build_three_uav_world(seed=2, n_persons=0)
        world = scenario.world
        decider = MissionDecider()
        eddis = {}
        monitors = {}
        for uav_id, uav in world.uavs.items():
            network = UavConSertNetwork(uav_id=uav_id)
            network.set_reliability_level("high")
            decider.add_uav(network)
            monitor = SafeDronesMonitor(uav_id=uav_id)
            monitors[uav_id] = monitor

            def make_adapter(u=uav, n=network, m=monitor):
                def update(now):
                    assessment = m.update(now, u.battery.soc, u.battery.temp_c)
                    n.set_reliability_level(assessment.level.value)
                    n.set_gps_quality_ok(
                        u.sensors.gps.measure(u.dynamics.position, now).quality_ok
                    )
                return update

            eddi = Eddi(name=f"{uav_id}-eddi", network=network)
            eddi.add_adapter(MonitorAdapter("safedrones", make_adapter()))
            eddis[uav_id] = eddi

        # Healthy fleet -> AS_PLANNED.
        for uav in world.uavs.values():
            uav.start_mission([(50.0, 50.0, 20.0), (100.0, 50.0, 20.0)])
        for _ in range(20):
            world.step()
            for eddi in eddis.values():
                eddi.step(world.time)
        assert decider.decide().verdict is MissionVerdict.AS_PLANNED

        # Degrade one UAV's battery catastrophically.
        world.uavs["uav1"].battery.soc = 0.08
        world.uavs["uav1"].battery.temp_c = 95.0
        for _ in range(600):
            world.step()
            for eddi in eddis.values():
                eddi.step(world.time)
            if eddis["uav1"].current_guarantee in (
                UavGuarantee.RETURN_TO_BASE,
                UavGuarantee.EMERGENCY_LAND,
            ):
                break
        assert eddis["uav1"].current_guarantee in (
            UavGuarantee.RETURN_TO_BASE,
            UavGuarantee.EMERGENCY_LAND,
        )
        decision = decider.decide()
        assert decision.verdict is MissionVerdict.REDISTRIBUTE
        assert decision.dropped_uavs == ["uav1"]


class TestSpoofToLandingChain:
    def test_detection_triggers_collaborative_landing(self):
        """The full Fig. 6 -> Fig. 7 response chain, driven by the EDDIs."""
        scenario = build_three_uav_world(seed=5, n_persons=0)
        world = scenario.world
        affected = world.uavs["uav1"]
        assistant = world.uavs["uav2"]
        affected.dynamics.position = (60.0, 80.0, 25.0)
        assistant.dynamics.position = (75.0, 80.0, 30.0)

        broker = MqttBroker()
        ids = IntrusionDetectionSystem(bus=world.bus, broker=broker)
        for node in ("uav1", "uav2", "uav3", "uav_manager", "gcs"):
            ids.register_node(node)
        network = UavConSertNetwork(uav_id="uav1")
        network.set_reliability_level("high")
        security_eddi = SecurityEddi(tree=ros_spoofing_attack_tree(), broker=broker)

        responses = []
        security_eddi.add_response(
            lambda event: responses.append(("cl_triggered", event.stamp))
        )
        world.add_attacker(
            SpoofingAttack(
                bus=world.bus,
                t_start=5.0,
                name="adversary",
                topic="/uav1/pose",
                spoofed_sender="uav1",
                payload_fn=lambda now: {"fake": True},
            )
        )

        detector = DroneDetector(rng=np.random.default_rng(7))
        localizer = CollaborativeLocalizer(target_id="uav1")
        controller = GuidedLandingController(
            uav=affected, landing_point=(50.0, 70.0)
        )
        engaged = False
        while world.time < 300.0:
            world.step()
            ids.scan(world.time)
            if security_eddi.root_achieved and not engaged:
                # ConSert response: revoke GPS, engage CL landing.
                network.set_attack_detected(True)
                affected.sensors.gps.denied = True
                controller.engage(world.time)
                engaged = True
            if engaged:
                assistant.command_guided_setpoint(
                    tuple(
                        p + o
                        for p, o in zip(affected.dynamics.position, (15.0, 0.0, 5.0))
                    )
                )
                detection = detector.observe(
                    "uav2",
                    "uav1",
                    assistant.dynamics.position,
                    affected.dynamics.position,
                    world.time,
                )
                if detection is not None:
                    localizer.add_sighting(
                        Sighting(
                            detection=detection,
                            observer_enu=assistant.dynamics.position,
                        )
                    )
                estimate = localizer.estimate(world.time)
                if estimate is not None:
                    controller.feed_estimate(estimate)
                controller.step(world.time)
                if controller.complete:
                    break

        assert responses, "Security EDDI response never fired"
        assert engaged
        assert controller.complete
        report = controller.report(world.time)
        assert report.final_error_m < 5.0
        # The ConSert now offers collaborative navigation, not GPS.
        assert network.navigation_guarantee() == "collaborative_navigation"


class TestDesignTimeToRuntime:
    def test_ode_package_generates_working_eddi(self):
        """DDI -> EDDI: serialise the network, rebuild, run the loop."""
        source = UavConSertNetwork(uav_id="uav1")
        package = OdePackage(system_name="uav1", metadata={"origin": "design-tool"})
        for consert in (
            source.security,
            source.gps_localization,
            source.vision_health,
            source.vision_localization,
            source.comm_localization,
            source.drone_detection,
            source.reliability,
            source.navigation,
            source.uav,
        ):
            package.add_consert(consert)
        package.add_attack_tree(ros_spoofing_attack_tree())

        shipped = package.to_json()
        restored = OdePackage.from_json(shipped)
        conserts = restored.instantiate_conserts()
        uav_consert = conserts["uav1/uav"]

        # Runtime evidence starts pessimistic: default guarantee.
        assert uav_consert.evaluate().name == "emergency_land"

        # Feed healthy evidence into the reconstructed models.
        for consert in conserts.values():
            for evidence in consert.evidence_nodes():
                evidence.set(True)
        assert uav_consert.evaluate().name == "continue_mission_extra_tasks"

        trees = restored.instantiate_attack_trees()
        trees[0].mark_achieved("network_intrusion")
        trees[0].mark_achieved("inject_messages")
        assert trees[0].root_achieved()
