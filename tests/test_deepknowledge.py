"""Unit tests for DeepKnowledge: the NumPy network and the analyzer."""

import numpy as np
import pytest

from repro.deepknowledge.knowledge import (
    DeepKnowledgeAnalyzer,
    hellinger_distance,
)
from repro.deepknowledge.network import FeedForwardNetwork, TrainConfig


def make_blobs(n, separation=3.0, seed=0):
    """Two-class Gaussian blobs in 2-D."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    centers = np.array([[0.0, 0.0], [separation, separation]])
    x = centers[labels] + rng.normal(0.0, 0.7, size=(n, 2))
    return x, labels


class TestNetwork:
    def test_rejects_too_few_layers(self):
        with pytest.raises(ValueError):
            FeedForwardNetwork([4])

    def test_predict_proba_normalised(self):
        net = FeedForwardNetwork([2, 8, 2])
        x, _ = make_blobs(20)
        probs = net.predict_proba(x)
        assert probs.shape == (20, 2)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0.0).all()

    def test_training_reduces_loss(self):
        net = FeedForwardNetwork([2, 16, 2])
        x, y = make_blobs(300)
        losses = net.train(x, y, TrainConfig(epochs=15))
        assert losses[-1] < losses[0]

    def test_learns_separable_blobs(self):
        net = FeedForwardNetwork([2, 16, 2])
        x, y = make_blobs(400)
        net.train(x, y, TrainConfig(epochs=25))
        assert net.accuracy(x, y) > 0.95

    def test_rejects_out_of_range_labels(self):
        net = FeedForwardNetwork([2, 8, 2])
        x, _ = make_blobs(10)
        with pytest.raises(ValueError):
            net.train(x, np.full(10, 5))

    def test_activation_trace_shape(self):
        net = FeedForwardNetwork([2, 8, 4, 2])
        x, _ = make_blobs(15)
        trace = net.activation_trace(x)
        assert trace.shape == (15, 12)  # 8 + 4 hidden units

    def test_activation_trace_nonnegative_relu(self):
        net = FeedForwardNetwork([2, 8, 2])
        x, _ = make_blobs(15)
        assert (net.activation_trace(x) >= 0.0).all()

    def test_deterministic_given_seed(self):
        x, y = make_blobs(100)
        nets = []
        for _ in range(2):
            net = FeedForwardNetwork([2, 8, 2], rng=np.random.default_rng(5))
            net.train(x, y, TrainConfig(epochs=3))
            nets.append(net.predict_proba(x))
        assert np.allclose(nets[0], nets[1])


class TestHellinger:
    def test_identical_is_zero(self):
        p = np.array([0.25, 0.75])
        assert hellinger_distance(p, p) == pytest.approx(0.0)

    def test_disjoint_is_one(self):
        assert hellinger_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    def test_symmetric(self):
        p = np.array([0.2, 0.8])
        q = np.array([0.6, 0.4])
        assert hellinger_distance(p, q) == pytest.approx(hellinger_distance(q, p))

    def test_rejects_mismatched_support(self):
        with pytest.raises(ValueError):
            hellinger_distance(np.array([1.0]), np.array([0.5, 0.5]))

    def test_normalises_unnormalised_histograms(self):
        raw = np.array([10, 30])
        norm = np.array([0.25, 0.75])
        assert hellinger_distance(raw, norm) == pytest.approx(0.0, abs=1e-12)


@pytest.fixture(scope="module")
def trained_setup():
    x_train, y_train = make_blobs(500, seed=1)
    x_shift, _ = make_blobs(300, separation=4.5, seed=2)
    net = FeedForwardNetwork([2, 16, 8, 2], rng=np.random.default_rng(3))
    net.train(x_train, y_train, TrainConfig(epochs=20))
    return net, x_train, x_shift


class TestAnalyzer:
    def test_requires_fit(self, trained_setup):
        net, x_train, _ = trained_setup
        analyzer = DeepKnowledgeAnalyzer(network=net)
        with pytest.raises(RuntimeError):
            analyzer.coverage(x_train)
        with pytest.raises(RuntimeError):
            analyzer.uncertainty(x_train)

    def test_selects_requested_fraction(self, trained_setup):
        net, x_train, x_shift = trained_setup
        analyzer = DeepKnowledgeAnalyzer(network=net, tk_fraction=0.25)
        tk = analyzer.fit(x_train, x_shift)
        assert len(tk) == round(0.25 * 24)

    def test_rejects_bad_fraction(self, trained_setup):
        net, x_train, x_shift = trained_setup
        analyzer = DeepKnowledgeAnalyzer(network=net, tk_fraction=0.0)
        with pytest.raises(ValueError):
            analyzer.fit(x_train, x_shift)

    def test_tk_neurons_are_most_stable(self, trained_setup):
        net, x_train, x_shift = trained_setup
        analyzer = DeepKnowledgeAnalyzer(network=net, tk_fraction=0.25)
        tk = analyzer.fit(x_train, x_shift)
        assert all(0.0 <= n.stability <= 1.0 + 1e-9 for n in tk)

    def test_coverage_of_training_data_is_high(self, trained_setup):
        net, x_train, x_shift = trained_setup
        analyzer = DeepKnowledgeAnalyzer(network=net)
        analyzer.fit(x_train, x_shift)
        report = analyzer.coverage(x_train)
        assert report.score > 0.3
        assert report.covered_bins <= report.total_bins

    def test_coverage_of_single_point_is_low(self, trained_setup):
        net, x_train, x_shift = trained_setup
        analyzer = DeepKnowledgeAnalyzer(network=net)
        analyzer.fit(x_train, x_shift)
        single = analyzer.coverage(x_train[:1])
        full = analyzer.coverage(x_train)
        assert single.score < full.score

    def test_uncertainty_low_in_domain(self, trained_setup):
        net, x_train, x_shift = trained_setup
        analyzer = DeepKnowledgeAnalyzer(network=net)
        analyzer.fit(x_train, x_shift)
        assert analyzer.uncertainty(x_train) < 0.1

    def test_uncertainty_high_out_of_domain(self, trained_setup):
        net, x_train, x_shift = trained_setup
        analyzer = DeepKnowledgeAnalyzer(network=net)
        analyzer.fit(x_train, x_shift)
        far = x_train + 30.0
        assert analyzer.uncertainty(far) > analyzer.uncertainty(x_train)
        assert analyzer.uncertainty(far) > 0.2

    def test_uncertainty_bounded(self, trained_setup):
        net, x_train, x_shift = trained_setup
        analyzer = DeepKnowledgeAnalyzer(network=net)
        analyzer.fit(x_train, x_shift)
        for data in (x_train, x_train + 100.0):
            assert 0.0 <= analyzer.uncertainty(data) <= 1.0
