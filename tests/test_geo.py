"""Unit tests for the geodesy primitives."""

import math

import pytest

from repro.geo import (
    EARTH_RADIUS_M,
    EnuFrame,
    GeoPoint,
    destination_point,
    enu_distance,
    haversine_m,
    initial_bearing_deg,
    slant_range_m,
)

NICOSIA = GeoPoint(35.1856, 33.3823, 0.0)
LIMASSOL = GeoPoint(34.7071, 33.0226, 0.0)


class TestHaversine:
    def test_zero_distance_to_self(self):
        assert haversine_m(NICOSIA, NICOSIA) == 0.0

    def test_symmetry(self):
        assert haversine_m(NICOSIA, LIMASSOL) == pytest.approx(
            haversine_m(LIMASSOL, NICOSIA)
        )

    def test_known_distance_nicosia_limassol(self):
        # Roughly 62 km between the two cities.
        assert haversine_m(NICOSIA, LIMASSOL) == pytest.approx(62_000, rel=0.05)

    def test_small_displacement_matches_flat_earth(self):
        # 0.001 deg latitude is ~111.2 m.
        north = GeoPoint(NICOSIA.lat + 0.001, NICOSIA.lon)
        assert haversine_m(NICOSIA, north) == pytest.approx(111.2, rel=0.01)

    def test_ignores_altitude(self):
        high = NICOSIA.with_alt(500.0)
        assert haversine_m(NICOSIA, high) == 0.0

    def test_antipodal_is_half_circumference(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        assert haversine_m(a, b) == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-9)


class TestSlantRange:
    def test_pure_vertical(self):
        assert slant_range_m(NICOSIA, NICOSIA.with_alt(100.0)) == pytest.approx(100.0)

    def test_pythagorean_combination(self):
        north = GeoPoint(NICOSIA.lat + 0.001, NICOSIA.lon, 50.0)
        ground = haversine_m(NICOSIA, north)
        assert slant_range_m(NICOSIA, north) == pytest.approx(
            math.hypot(ground, 50.0)
        )


class TestBearing:
    def test_due_north(self):
        north = GeoPoint(NICOSIA.lat + 0.01, NICOSIA.lon)
        assert initial_bearing_deg(NICOSIA, north) == pytest.approx(0.0, abs=0.01)

    def test_due_east(self):
        east = GeoPoint(NICOSIA.lat, NICOSIA.lon + 0.01)
        assert initial_bearing_deg(NICOSIA, east) == pytest.approx(90.0, abs=0.1)

    def test_due_south(self):
        south = GeoPoint(NICOSIA.lat - 0.01, NICOSIA.lon)
        assert initial_bearing_deg(NICOSIA, south) == pytest.approx(180.0, abs=0.01)

    def test_range_is_0_360(self):
        west = GeoPoint(NICOSIA.lat, NICOSIA.lon - 0.01)
        bearing = initial_bearing_deg(NICOSIA, west)
        assert 0.0 <= bearing < 360.0
        assert bearing == pytest.approx(270.0, abs=0.1)


class TestDestinationPoint:
    def test_roundtrip_distance(self):
        dest = destination_point(NICOSIA, 45.0, 1000.0)
        assert haversine_m(NICOSIA, dest) == pytest.approx(1000.0, rel=1e-6)

    def test_roundtrip_bearing(self):
        dest = destination_point(NICOSIA, 123.0, 5000.0)
        assert initial_bearing_deg(NICOSIA, dest) == pytest.approx(123.0, abs=0.05)

    def test_zero_distance_is_identity(self):
        dest = destination_point(NICOSIA, 77.0, 0.0)
        assert dest.lat == pytest.approx(NICOSIA.lat)
        assert dest.lon == pytest.approx(NICOSIA.lon)

    def test_altitude_carried_over(self):
        origin = NICOSIA.with_alt(120.0)
        dest = destination_point(origin, 10.0, 500.0)
        assert dest.alt == 120.0


class TestEnuFrame:
    def test_origin_maps_to_zero(self):
        frame = EnuFrame(origin=NICOSIA)
        assert frame.to_enu(NICOSIA) == pytest.approx((0.0, 0.0, 0.0))

    def test_roundtrip(self):
        frame = EnuFrame(origin=NICOSIA)
        p = frame.to_geo(150.0, -75.0, 30.0)
        east, north, up = frame.to_enu(p)
        assert east == pytest.approx(150.0, abs=1e-6)
        assert north == pytest.approx(-75.0, abs=1e-6)
        assert up == pytest.approx(30.0, abs=1e-9)

    def test_enu_consistent_with_haversine(self):
        frame = EnuFrame(origin=NICOSIA)
        p = frame.to_geo(300.0, 400.0)
        east, north, _ = frame.to_enu(p)
        assert haversine_m(NICOSIA, p) == pytest.approx(
            math.hypot(east, north), rel=1e-4
        )

    def test_north_displacement(self):
        frame = EnuFrame(origin=NICOSIA)
        north_point = GeoPoint(NICOSIA.lat + 0.001, NICOSIA.lon)
        east, north, _ = frame.to_enu(north_point)
        assert abs(east) < 1e-9
        assert north == pytest.approx(111.2, rel=0.01)


def test_enu_distance():
    assert enu_distance((0, 0, 0), (3, 4, 0)) == pytest.approx(5.0)
    assert enu_distance((1, 1, 1), (1, 1, 1)) == 0.0
