"""Property-based tests for the extension modules: message auth,
multilateration, redistribution, multivariate distances, quantitative
attack trees."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.localization.comm import CommLocalizer, RangeMeasurement
from repro.middleware.auth import MessageSigner, VerifyingSubscriber
from repro.middleware.rosbus import RosBus
from repro.safeml.multivariate import energy_distance, mmd_rbf
from repro.security.analysis import propagate_likelihood
from repro.security.attack_trees import AttackNode, GateType


class TestAuthProperties:
    @given(
        bodies=st.lists(
            st.dictionaries(
                st.text(min_size=1, max_size=8),
                st.integers(min_value=-1000, max_value=1000),
                max_size=4,
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50)
    def test_signed_stream_delivers_in_order(self, bodies):
        bus = RosBus()
        received = []
        key = b"k"
        signer = MessageSigner(node="uav1", key=key)
        VerifyingSubscriber(
            bus=bus, topic="/t", node="sub", key=key,
            on_message=lambda sender, body: received.append(body),
        )
        for body in bodies:
            signer.publish(bus, "/t", body)
        assert received == bodies

    @given(
        seq=st.integers(min_value=0, max_value=10_000),
        body=st.integers(),
    )
    @settings(max_examples=50)
    def test_forged_tags_never_accepted(self, seq, body):
        from repro.middleware.auth import SignedPayload

        bus = RosBus()
        received = []
        VerifyingSubscriber(
            bus=bus, topic="/t", node="sub", key=b"secret",
            on_message=lambda sender, payload: received.append(payload),
        )
        forged = SignedPayload(sender="uav1", seq=seq, body=body, tag="ab" * 32)
        bus.publish("/t", forged, sender="uav1", origin="adversary")
        assert received == []


@st.composite
def anchor_geometry(draw):
    """Random well-spread 4-anchor geometry plus a target inside it."""
    anchors = {}
    offsets = [(0.0, 0.0), (120.0, 0.0), (60.0, 130.0), (-50.0, 70.0)]
    for i, (east, north) in enumerate(offsets):
        jitter_e = draw(st.floats(min_value=-20.0, max_value=20.0))
        jitter_n = draw(st.floats(min_value=-20.0, max_value=20.0))
        alt = draw(st.floats(min_value=2.0, max_value=40.0))
        anchors[f"a{i}"] = (east + jitter_e, north + jitter_n, alt)
    target = (
        draw(st.floats(min_value=10.0, max_value=90.0)),
        draw(st.floats(min_value=10.0, max_value=90.0)),
        draw(st.floats(min_value=5.0, max_value=35.0)),
    )
    return anchors, target


class TestMultilaterationProperties:
    @given(geometry=anchor_geometry())
    @settings(max_examples=40, deadline=None)
    def test_noiseless_solve_recovers_target(self, geometry):
        anchors, target = geometry
        measurements = [
            RangeMeasurement(
                anchor_id=anchor_id,
                anchor_enu=anchor,
                range_m=math.dist(anchor, target),
                sigma_m=0.3,
                stamp=0.0,
            )
            for anchor_id, anchor in anchors.items()
        ]
        fix = CommLocalizer().solve(
            measurements, initial_guess=(50.0, 50.0, 20.0), altitude_prior=target[2]
        )
        assert fix is not None
        assert math.dist(fix.enu, target) < 0.5


class TestRedistributionProperties:
    @given(
        n_waypoints=st.integers(min_value=1, max_value=30),
        done=st.integers(min_value=0, max_value=29),
        max_segments=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_plan_partitions_remaining_exactly(self, n_waypoints, done, max_segments):
        from repro.experiments.common import build_three_uav_world
        from repro.sar.redistribution import TaskRedistributor

        scenario = build_three_uav_world(seed=1, n_persons=0)
        world = scenario.world
        dropped = world.uavs["uav1"]
        waypoints = [(float(10 * i), 50.0, 20.0) for i in range(n_waypoints)]
        dropped.start_mission(waypoints)
        dropped.plan.index = min(done, n_waypoints)
        takeover = [world.uavs["uav2"], world.uavs["uav3"]]
        assignments = TaskRedistributor(max_segments=max_segments).plan(
            dropped, takeover
        )
        planned = [wp for a in assignments for wp in a.waypoints]
        assert planned == waypoints[min(done, n_waypoints):]
        assert len(assignments) <= max_segments


class TestMultivariateProperties:
    @given(
        data=st.lists(
            st.lists(
                st.floats(min_value=-50.0, max_value=50.0), min_size=2, max_size=2
            ),
            min_size=4,
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_energy_and_mmd_axioms(self, data):
        sample = np.array(data)
        assert energy_distance(sample, sample) == pytest.approx(0.0, abs=1e-9)
        assert mmd_rbf(sample, sample) == pytest.approx(0.0, abs=1e-9)
        shifted = sample + 100.0
        assert energy_distance(sample, shifted) > 0.0

    @given(
        data=st.lists(
            st.lists(
                st.floats(min_value=-50.0, max_value=50.0), min_size=3, max_size=3
            ),
            min_size=4,
            max_size=20,
        ),
        other=st.lists(
            st.lists(
                st.floats(min_value=-50.0, max_value=50.0), min_size=3, max_size=3
            ),
            min_size=4,
            max_size=20,
        ),
    )
    @settings(max_examples=40)
    def test_symmetry(self, data, other):
        a, b = np.array(data), np.array(other)
        assert energy_distance(a, b) == pytest.approx(
            energy_distance(b, a), rel=1e-9, abs=1e-12
        )


LIKELIHOODS = st.sampled_from(["low", "medium", "high", "very_high"])


@st.composite
def random_attack_tree(draw, depth=0):
    """Random well-formed attack tree up to depth 3."""
    if depth >= 2 or draw(st.booleans()):
        return AttackNode(
            node_id=f"leaf{draw(st.integers(0, 10_000))}",
            title="leaf",
            likelihood=draw(LIKELIHOODS),
        )
    gate = draw(st.sampled_from([GateType.AND, GateType.OR]))
    n_children = draw(st.integers(min_value=1, max_value=3))
    children = [draw(random_attack_tree(depth=depth + 1)) for _ in range(n_children)]
    return AttackNode(
        node_id=f"gate{draw(st.integers(0, 10_000))}",
        title="gate",
        gate=gate,
        children=children,
        likelihood=draw(LIKELIHOODS),
    )


class TestAttackTreeProperties:
    @given(tree=random_attack_tree())
    @settings(max_examples=60)
    def test_likelihood_in_unit_interval(self, tree):
        value = propagate_likelihood(tree)
        assert 0.0 <= value <= 1.0

    @given(tree=random_attack_tree())
    @settings(max_examples=60)
    def test_and_bounded_by_or(self, tree):
        if tree.gate is GateType.LEAF or not tree.children:
            return
        child_values = [propagate_likelihood(c) for c in tree.children]
        value = propagate_likelihood(tree)
        if tree.gate is GateType.AND:
            assert value <= min(child_values) + 1e-12
        else:
            assert value >= max(child_values) - 1e-12
