"""Unit tests for the campaign harness and the per-UAV seeding fix."""

from __future__ import annotations

import json

import pytest

import repro.harness.synthetic  # noqa: F401  (registers "synthetic")
from repro.experiments.common import build_three_uav_world, uav_rng_streams
from repro.harness.cache import ResultCache, code_fingerprint, sample_key, stable_hash
from repro.harness.campaign import SampleRecord, get_experiment, run_campaign
from repro.harness.manifest import (
    deterministic_view,
    manifest_fingerprint,
    read_manifest,
)
from repro.harness.seeding import sample_seed, spawn_sample_seeds
from repro.harness.synthetic import synthetic_sample
from repro.harness.timing import PhaseTimer


def full_record(index: int = 0, result: dict | None = None, **extra) -> dict:
    """A schema-complete sample record for cache tests."""
    return {
        "index": index, "seed": 100 + index, "config": {"i": index},
        "result": {"v": float(index)} if result is None else result,
        "wall_time_s": 0.01, "worker": "test", "cached": False,
        "timings": {}, "status": "ok", "attempts": 1, **extra,
    }


class TestSeeding:
    def test_streams_are_deterministic(self):
        assert spawn_sample_seeds(7, 5) == spawn_sample_seeds(7, 5)

    def test_sample_seed_independent_of_grid_size(self):
        # Sample i's seed must not depend on how many samples exist —
        # that's what makes one manifest entry reproducible in isolation.
        many = spawn_sample_seeds(7, 50)
        for index in (0, 3, 49):
            assert sample_seed(7, index) == many[index]

    def test_distinct_roots_give_distinct_streams(self):
        assert spawn_sample_seeds(1, 8) != spawn_sample_seeds(2, 8)

    def test_seeds_fit_signed_64(self):
        assert all(0 <= s < 2**63 for s in spawn_sample_seeds(3, 100))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_sample_seeds(0, -1)


class TestCacheKeys:
    def test_stable_hash_ignores_key_order(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_sample_key_varies_with_each_component(self):
        base = sample_key("e", {"x": 1}, 5, "c")
        assert sample_key("f", {"x": 1}, 5, "c") != base
        assert sample_key("e", {"x": 2}, 5, "c") != base
        assert sample_key("e", {"x": 1}, 6, "c") != base
        assert sample_key("e", {"x": 1}, 5, "d") != base

    def test_code_fingerprint_tracks_source_and_version(self):
        fp = code_fingerprint(synthetic_sample)
        assert fp == code_fingerprint(synthetic_sample)
        assert fp != code_fingerprint(synthetic_sample, version="2")

    def test_cache_round_trip_and_corruption_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = full_record(index=0, result={"v": 1.5})
        cache.put("exp", "k1", record)
        assert cache.get("exp", "k1") == record
        assert cache.count("exp") == 1
        (tmp_path / "exp" / "k1.json").write_text("{broken")
        assert cache.get("exp", "k1") is None
        # Corrupt entries are evicted, not left to shadow future puts.
        assert not (tmp_path / "exp" / "k1.json").exists()

    def test_old_schema_record_is_a_miss_and_evicted(self, tmp_path):
        # A record written before `status`/`attempts` became required
        # must read as a miss (and get evicted), not crash the campaign.
        cache = ResultCache(tmp_path)
        v1_record = {
            "index": 0, "seed": 1, "config": {}, "result": {"v": 1.0},
            "wall_time_s": 0.1, "worker": "w", "cached": False, "timings": {},
        }
        cache.put("exp", "k1", v1_record)
        assert cache.get("exp", "k1") is None
        assert not (tmp_path / "exp" / "k1.json").exists()

    def test_count_ignores_foreign_and_partial_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("exp", "k1", full_record(index=0))
        cache.put("exp", "k2", full_record(index=1))
        (tmp_path / "exp" / "notes.json").write_text('{"not": "a record"}')
        (tmp_path / "exp" / "partial.json").write_text('{"index": 3, "seed"')
        (tmp_path / "exp" / "stray.txt").write_text("ignored")
        assert cache.count("exp") == 2

    def test_put_fsyncs_before_publishing(self, tmp_path, monkeypatch):
        # Checkpoint durability: the record's bytes must be fsynced
        # before the rename publishes the file, so a SIGKILL right after
        # `put` returns can't leave a truncated record at the final
        # path. Observe the ordering by instrumenting both syscalls.
        import os as os_module

        calls = []
        real_fsync, real_replace = os_module.fsync, os_module.replace
        monkeypatch.setattr(
            "repro.harness.cache.os.fsync",
            lambda fd: (calls.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            "repro.harness.cache.os.replace",
            lambda a, b: (calls.append("replace"), real_replace(a, b))[1],
        )
        cache = ResultCache(tmp_path)
        cache.put("exp", "k1", full_record(index=0))
        assert calls == ["fsync", "replace"]
        assert cache.get("exp", "k1") == full_record(index=0)

    def test_torn_write_is_evicted_not_fatal(self, tmp_path):
        # A truncated record at the *final* path (torn write from a
        # pre-fsync crash, or a copy interrupted mid-transfer) must read
        # as an evicted miss; the next put then heals the entry.
        cache = ResultCache(tmp_path)
        record = full_record(index=0, result={"v": 2.0})
        cache.put("exp", "k1", record)
        path = tmp_path / "exp" / "k1.json"
        torn = path.read_text()[: len(path.read_text()) // 2]
        path.write_text(torn)
        assert cache.get("exp", "k1") is None
        assert not path.exists()
        cache.put("exp", "k1", record)
        assert cache.get("exp", "k1") == record

    def test_interrupted_put_leaves_no_temp_litter(self, tmp_path, monkeypatch):
        # A crash *during* put (here: fsync raising) must not leave the
        # temp file behind to be mistaken for cache content later.
        cache = ResultCache(tmp_path)
        cache.put("exp", "k0", full_record(index=0))  # create the dir

        def boom(fd):
            raise OSError("disk gone")

        monkeypatch.setattr("repro.harness.cache.os.fsync", boom)
        with pytest.raises(OSError):
            cache.put("exp", "k1", full_record(index=1))
        leftovers = [
            p.name for p in (tmp_path / "exp").iterdir()
            if p.suffix == ".tmp"
        ]
        assert leftovers == []
        assert cache.get("exp", "k1") is None


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        report = timer.as_dict()
        assert report["a"]["calls"] == 2
        assert report["b"]["calls"] == 1
        assert report["a"]["total_s"] >= 0.0


class TestRunCampaign:
    def test_records_in_grid_order_with_assigned_seeds(self):
        result = run_campaign("synthetic", grid="smoke", root_seed=9)
        assert [r.index for r in result.records] == list(range(8))
        assert [r.seed for r in result.records] == spawn_sample_seeds(9, 8)

    def test_cache_skips_completed_points(self, tmp_path):
        first = run_campaign(
            "synthetic", grid="smoke", root_seed=9, cache_dir=tmp_path
        )
        second = run_campaign(
            "synthetic", grid="smoke", root_seed=9, cache_dir=tmp_path
        )
        assert first.manifest["totals"]["cached"] == 0
        assert second.manifest["totals"]["cached"] == 8
        assert second.results == first.results
        assert second.fingerprint == first.fingerprint

    def test_root_seed_changes_results(self):
        a = run_campaign("synthetic", grid="smoke", root_seed=1)
        b = run_campaign("synthetic", grid="smoke", root_seed=2)
        assert a.fingerprint != b.fingerprint

    def test_explicit_config_grid_is_custom(self):
        result = run_campaign("synthetic", grid=[{"n": 16}], root_seed=0)
        assert result.grid == "custom"
        assert len(result.records) == 1

    def test_manifest_written_and_fingerprint_reproducible(self, tmp_path):
        path = tmp_path / "manifest.json"
        result = run_campaign(
            "synthetic", grid="smoke", root_seed=4, manifest_path=path
        )
        on_disk = read_manifest(path)
        assert on_disk["schema_version"] == 3
        assert manifest_fingerprint(on_disk) == result.fingerprint
        sample = on_disk["samples"][0]
        assert {"index", "seed", "config", "result", "wall_time_s", "worker",
                "cached", "timings", "status", "attempts"} <= set(sample)
        assert sample["status"] == "ok" and sample["attempts"] == 1
        assert on_disk["totals"]["failed"] == 0

    def test_single_sample_reproducible_from_manifest_entry(self, tmp_path):
        # The audit contract: re-running one sample from its manifest
        # entry (config + seed) reproduces its result exactly.
        path = tmp_path / "manifest.json"
        run_campaign("synthetic", grid="smoke", root_seed=4, manifest_path=path)
        entry = read_manifest(path)["samples"][3]
        redo = synthetic_sample(entry["config"], entry["seed"], PhaseTimer())
        assert redo == entry["result"]

    def test_deterministic_view_strips_provenance(self):
        result = run_campaign("synthetic", grid="smoke", root_seed=4)
        view = deterministic_view(result.manifest)
        assert "workers" not in view
        assert all("wall_time_s" not in s for s in view["samples"])

    def test_unknown_experiment_and_bad_workers(self):
        with pytest.raises(KeyError):
            get_experiment("no-such-experiment")
        with pytest.raises(ValueError):
            run_campaign("synthetic", grid="smoke", workers=0)

    def test_manifest_is_json_serializable(self):
        result = run_campaign("synthetic", grid="smoke", root_seed=0)
        json.dumps(result.manifest)

    def test_sample_record_from_dict_tolerates_older_schema(self):
        # Manifest entries from before status/attempts existed still load
        # (they fall back to the field defaults) — only truly core fields
        # are allowed to raise.
        v1_entry = {
            "index": 2, "seed": 7, "config": {"n": 4}, "result": {"v": 1.0},
            "wall_time_s": 0.5, "worker": "w", "cached": False, "timings": {},
        }
        record = SampleRecord.from_dict(v1_entry)
        assert record.status == "ok"
        assert record.attempts == 1
        assert record.error is None and record.metrics is None
        with pytest.raises(KeyError):
            SampleRecord.from_dict({"index": 0})


class TestPerUavSeeding:
    """The build_three_uav_world per-UAV stream fix."""

    def test_streams_keyed_by_position_not_fleet_size(self):
        three = uav_rng_streams(seed=11, n_uavs=3)
        five = uav_rng_streams(seed=11, n_uavs=5)
        for a, b in zip(three, five):
            assert a.bit_generator.state == b.bit_generator.state

    def test_adding_a_uav_does_not_perturb_existing_streams(self):
        w3 = build_three_uav_world(seed=11, n_persons=0)
        w4 = build_three_uav_world(seed=11, n_persons=0, n_uavs=4)
        assert w4.uav_ids == ("uav1", "uav2", "uav3", "uav4")
        for uav_id in w3.uav_ids:
            assert (
                w3.world.uavs[uav_id].rng.bit_generator.state
                == w4.world.uavs[uav_id].rng.bit_generator.state
            )

    def test_uav_streams_are_mutually_independent(self):
        scenario = build_three_uav_world(seed=11, n_persons=0)
        draws = {
            uav_id: tuple(uav.rng.random(4))
            for uav_id, uav in scenario.world.uavs.items()
        }
        assert len(set(draws.values())) == len(draws)

    def test_fleet_size_does_not_change_simulated_trajectories(self):
        # Behavioral lock: uav1 flown alongside 3 or 4 peers sees the
        # same noise, hence the same measured temperatures and positions.
        runs = []
        for n_uavs in (3, 4):
            scenario = build_three_uav_world(seed=11, n_persons=0, n_uavs=n_uavs)
            world = scenario.world
            uav = world.uavs["uav1"]
            trace = []
            for _ in range(30):
                world.step()
                trace.append(
                    (
                        uav.dynamics.position,
                        uav.sensors.temperature.measure(uav.battery.temp_c),
                    )
                )
            runs.append(trace)
        assert runs[0] == runs[1]

    def test_world_person_scatter_unchanged_by_fleet_size(self):
        w3 = build_three_uav_world(seed=11, n_persons=6)
        w5 = build_three_uav_world(seed=11, n_persons=6, n_uavs=5)
        assert [p.position for p in w3.world.persons] == [
            p.position for p in w5.world.persons
        ]

    def test_seed_still_controls_everything(self):
        a = build_three_uav_world(seed=1, n_persons=0)
        b = build_three_uav_world(seed=2, n_persons=0)
        assert (
            a.world.uavs["uav1"].rng.bit_generator.state
            != b.world.uavs["uav1"].rng.bit_generator.state
        )

    def test_uav_rng_streams_rejects_nothing_silently(self):
        assert uav_rng_streams(seed=0, n_uavs=0) == []
