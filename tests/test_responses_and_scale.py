"""Tests for the standard response policy and fleet-scale behaviour."""

import numpy as np
import pytest

from repro.core.adapters import build_fleet_eddis
from repro.core.decider import MissionDecider, MissionVerdict
from repro.core.responses import FleetResponseCoordinator, StandardResponsePolicy
from repro.core.uav_network import UavConSertNetwork, UavGuarantee
from repro.geo import EnuFrame, GeoPoint
from repro.sar.coverage import boustrophedon_path, partition_area
from repro.uav.battery import BatteryFault
from repro.uav.uav import FlightMode, Uav, UavSpec
from repro.uav.world import World


def build_fleet_world(n_uavs: int, seed=0):
    rng = np.random.default_rng(seed)
    world = World(
        frame=EnuFrame(origin=GeoPoint(35.1, 33.4, 0.0)),
        rng=rng,
        area_size_m=(120.0 * n_uavs, 300.0),
    )
    for i in range(n_uavs):
        world.add_uav(
            Uav(
                spec=UavSpec(
                    uav_id=f"uav{i + 1}", base_position=(60.0 + 120.0 * i, -20.0, 0.0)
                ),
                frame=world.frame,
                bus=world.bus,
                rng=rng,
            )
        )
    return world


class TestStandardResponsePolicy:
    def setup_policy(self):
        world = build_fleet_world(3, seed=5)
        fleet = build_fleet_eddis(world, cl_range_m=400.0)
        policies = {
            uav_id: StandardResponsePolicy(uav=world.uavs[uav_id], eddi=eddi)
            for uav_id, (eddi, stack) in fleet.items()
        }
        return world, fleet, policies

    def test_battery_failure_triggers_flight_response(self):
        world, fleet, policies = self.setup_policy()
        uav = world.uavs["uav1"]
        # A long enough mission that the PoF crosses the RTB band mid-air.
        uav.start_mission(
            [
                (60.0, 280.0, 20.0),
                (100.0, 20.0, 20.0),
                (140.0, 280.0, 20.0),
                (180.0, 20.0, 20.0),
                (220.0, 280.0, 20.0),
            ]
        )
        uav.battery.soc = 0.8
        uav.battery.inject_fault(BatteryFault(at_time=10.0, soc_drop_to=0.15))
        while world.time < 600.0:
            world.step()
            for eddi, _ in fleet.values():
                eddi.step(world.time)
            if uav.mode in (FlightMode.RETURN_TO_BASE, FlightMode.EMERGENCY_LAND,
                            FlightMode.LANDED):
                break
        assert policies["uav1"].log
        actions = [action for _, action in policies["uav1"].log]
        assert any(a in ("return_to_base", "emergency_land") for a in actions)

    def test_healthy_mission_no_interference(self):
        world, fleet, policies = self.setup_policy()
        for uav in world.uavs.values():
            uav.start_mission([(100.0, 200.0, 20.0)])
        for _ in range(30):
            world.step()
            for eddi, _ in fleet.values():
                eddi.step(world.time)
        assert all(not policy.log for policy in policies.values())

    def test_hold_and_resume_cycle(self):
        world = build_fleet_world(1, seed=6)
        uav = world.uavs["uav1"]
        uav.start_mission([(60.0, 280.0, 20.0)])
        network = UavConSertNetwork(uav_id="uav1")
        network.set_reliability_level("high")
        from repro.core.eddi import Eddi

        eddi = Eddi(name="uav1", network=network)
        policy = StandardResponsePolicy(uav=uav, eddi=eddi)
        eddi.step(1.0)
        # Degrade into the HOLD band: medium reliability, no nav, camera ok.
        network.set_reliability_level("medium")
        network.set_gps_quality_ok(False)
        network.set_nearby_uavs_available(False)
        network.set_safeml_confidence_ok(False)
        network.set_drone_detection_ok(False)
        eddi.step(2.0)
        assert uav.mode is FlightMode.HOLD
        # Situation clears -> resume.
        network.set_gps_quality_ok(True)
        network.set_reliability_level("high")
        eddi.step(3.0)
        assert uav.mode is FlightMode.MISSION
        assert [a for _, a in policy.log] == ["hold_position", "resume_mission"]


class TestFleetResponseCoordinator:
    def test_redistribution_happens_once_per_dropout(self):
        world = build_fleet_world(3, seed=7)
        networks = {}
        decider = MissionDecider()
        for uav_id in world.uavs:
            network = UavConSertNetwork(uav_id=uav_id)
            network.set_reliability_level("high")
            decider.add_uav(network)
            networks[uav_id] = network
        strips = partition_area(world.area_size_m, 3)
        for (uav_id, uav), bounds in zip(sorted(world.uavs.items()), strips):
            uav.start_mission(boustrophedon_path(bounds, 20.0))
        coordinator = FleetResponseCoordinator(decider=decider, uavs=world.uavs)

        for _ in range(30):
            world.step()
        assert coordinator.step(world.time) is MissionVerdict.AS_PLANNED
        assert coordinator.assignments == []

        networks["uav1"].set_reliability_level("low")
        world.uavs["uav1"].command_mode(FlightMode.RETURN_TO_BASE)
        verdict = coordinator.step(world.time)
        assert verdict is MissionVerdict.REDISTRIBUTE
        first_count = len(coordinator.assignments)
        assert first_count > 0
        # Stepping again does not re-assign the same dropout.
        coordinator.step(world.time)
        assert len(coordinator.assignments) == first_count


class TestFleetScale:
    @pytest.mark.parametrize("n_uavs", [6, 10])
    def test_large_fleet_decider(self, n_uavs):
        decider = MissionDecider()
        networks = []
        for i in range(n_uavs):
            network = UavConSertNetwork(uav_id=f"uav{i + 1}")
            network.set_reliability_level("high")
            decider.add_uav(network)
            networks.append(network)
        assert decider.decide().verdict is MissionVerdict.AS_PLANNED
        # Two dropouts with plenty of spare capacity -> redistribute.
        networks[0].set_reliability_level("low")
        networks[1].set_reliability_level("low")
        decision = decider.decide()
        assert decision.verdict is MissionVerdict.REDISTRIBUTE
        plan = decider.redistribution_plan()
        assert set(plan) == {"uav1", "uav2"}

    def test_six_uav_world_steps(self):
        world = build_fleet_world(6, seed=9)
        strips = partition_area(world.area_size_m, 6)
        for (uav_id, uav), bounds in zip(sorted(world.uavs.items()), strips):
            uav.start_mission(boustrophedon_path(bounds, 20.0))
        fleet = build_fleet_eddis(world, cl_range_m=250.0)
        for _ in range(40):
            world.step()
            for eddi, _ in fleet.values():
                eddi.step(world.time)
        guarantees = {uav_id: eddi.current_guarantee for uav_id, (eddi, _) in fleet.items()}
        assert all(
            g is UavGuarantee.CONTINUE_MISSION_EXTRA for g in guarantees.values()
        )
