"""Unit tests for dual-modality detection and arrangement analysis."""

import numpy as np
import pytest

from repro.safedrones.arrangement import (
    ArrangementAnalysis,
    is_controllable,
    regular_airframe,
)
from repro.sar.thermal import (
    DualModalityDetector,
    LightCondition,
    fused_accuracy,
    rgb_accuracy,
    thermal_accuracy,
)


class TestRgbAccuracy:
    def test_day_matches_base_model(self):
        from repro.sar.detection import detection_accuracy

        assert rgb_accuracy(20.0, LightCondition.DAY) == pytest.approx(
            detection_accuracy(20.0)
        )

    def test_night_collapses_rgb(self):
        day = rgb_accuracy(20.0, LightCondition.DAY)
        night = rgb_accuracy(20.0, LightCondition.NIGHT)
        assert night < 0.7 < day

    def test_poor_visibility_hurts(self):
        clear = rgb_accuracy(20.0, LightCondition.DAY, visibility_ok=True)
        hazy = rgb_accuracy(20.0, LightCondition.DAY, visibility_ok=False)
        assert hazy < clear

    def test_never_below_chance(self):
        assert rgb_accuracy(60.0, LightCondition.NIGHT, False) >= 0.5


class TestThermalAccuracy:
    def test_cool_conditions_near_base(self):
        from repro.sar.detection import detection_accuracy

        assert thermal_accuracy(20.0, ambient_c=10.0) == pytest.approx(
            detection_accuracy(20.0), abs=0.001
        )

    def test_hot_ambient_kills_contrast(self):
        cool = thermal_accuracy(20.0, ambient_c=15.0)
        hot = thermal_accuracy(20.0, ambient_c=36.0)
        assert hot < cool
        assert hot < 0.7

    def test_light_independent(self):
        # Thermal does not take a light argument at all; sanity-check the
        # fused behaviour at night instead.
        night_fused = fused_accuracy(20.0, LightCondition.NIGHT, ambient_c=15.0)
        assert night_fused > 0.95


class TestFusion:
    def test_fusion_at_least_best_channel(self):
        for light in LightCondition:
            for ambient in (10.0, 25.0, 35.0):
                fused = fused_accuracy(20.0, light, ambient)
                assert fused >= rgb_accuracy(20.0, light) - 1e-9
                assert fused >= thermal_accuracy(20.0, ambient) - 1e-9

    def test_night_rescued_by_thermal(self):
        rgb_night = rgb_accuracy(20.0, LightCondition.NIGHT)
        fused_night = fused_accuracy(20.0, LightCondition.NIGHT, ambient_c=15.0)
        assert fused_night > rgb_night + 0.2

    def test_hot_noon_rescued_by_rgb(self):
        thermal_noon = thermal_accuracy(20.0, ambient_c=36.0)
        fused_noon = fused_accuracy(20.0, LightCondition.DAY, ambient_c=36.0)
        assert fused_noon > thermal_noon + 0.2

    def test_worst_case_night_and_hot(self):
        # Hot night: both channels degraded, fused still above either.
        fused = fused_accuracy(20.0, LightCondition.NIGHT, ambient_c=34.0)
        assert 0.5 < fused < 0.95


class TestDualModalityDetector:
    def test_empirical_rate_matches_model(self):
        detector = DualModalityDetector(
            rng=np.random.default_rng(0), light=LightCondition.DUSK, ambient_c=20.0
        )
        hits = sum(detector.attempt(20.0) for _ in range(5000))
        assert hits / 5000 == pytest.approx(detector.accuracy(20.0), abs=0.02)

    def test_thermal_loss_degrades_at_night(self):
        detector = DualModalityDetector(
            rng=np.random.default_rng(0), light=LightCondition.NIGHT
        )
        with_thermal = detector.accuracy(20.0)
        detector.thermal_available = False
        without = detector.accuracy(20.0)
        assert without < with_thermal - 0.2

    def test_modality_report_keys(self):
        detector = DualModalityDetector(rng=np.random.default_rng(0))
        report = detector.modality_report(25.0)
        assert set(report) == {"rgb", "thermal", "fused"}
        assert report["fused"] >= max(report["rgb"], report["thermal"]) - 1e-9


class TestArrangement:
    def test_rejects_odd_or_tiny_airframes(self):
        with pytest.raises(ValueError):
            regular_airframe(5)
        with pytest.raises(ValueError):
            regular_airframe(2)

    def test_alternating_spin_balances(self):
        motors = regular_airframe(6)
        assert sum(m.spin for m in motors) == 0

    def test_intact_airframes_controllable(self):
        for n in (4, 6, 8):
            motors = regular_airframe(n)
            assert is_controllable(motors, frozenset())

    def test_quad_dies_on_any_single_failure(self):
        motors = regular_airframe(4)
        for i in range(4):
            assert not is_controllable(motors, frozenset({i}))

    def test_hexa_survives_any_single_failure(self):
        motors = regular_airframe(6)
        for i in range(6):
            assert is_controllable(motors, frozenset({i}))

    def test_hexa_two_failures_combination_dependent(self):
        analysis = ArrangementAnalysis(rotor_count=6)
        p2 = analysis.survival_by_count[2]
        assert 0.0 < p2 < 1.0  # some pairs survivable, some fatal

    def test_survival_by_count_monotone(self):
        analysis = ArrangementAnalysis(rotor_count=6)
        values = [analysis.survival_by_count[n] for n in range(7)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_guaranteed_vs_max_tolerable(self):
        quad = ArrangementAnalysis(rotor_count=4)
        hexa = ArrangementAnalysis(rotor_count=6)
        octa = ArrangementAnalysis(rotor_count=8)
        assert quad.guaranteed_tolerable_failures() == 0
        assert hexa.guaranteed_tolerable_failures() == 1
        assert octa.guaranteed_tolerable_failures() >= 1
        assert hexa.max_tolerable_failures() >= 2

    def test_effective_reconfig_success_in_unit_interval(self):
        analysis = ArrangementAnalysis(rotor_count=6)
        for k in range(3):
            assert 0.0 <= analysis.effective_reconfig_success(k) <= 1.0

    def test_first_failure_reconfig_certain_for_hexa(self):
        analysis = ArrangementAnalysis(rotor_count=6)
        assert analysis.effective_reconfig_success(0) == pytest.approx(1.0)
