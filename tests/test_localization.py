"""Unit tests for collaborative localization: depth, detection, fusion,
triangulation, landing."""

import math

import numpy as np
import pytest

from repro.geo import EnuFrame, GeoPoint
from repro.localization.collaborative import (
    CollaborativeLocalizer,
    Sighting,
    sighting_to_geopoint,
    sighting_to_position,
)
from repro.localization.depth import MonocularDepthEstimator
from repro.localization.detection import DroneDetector
from repro.localization.fusion import ConstantVelocityKalman

FRAME = EnuFrame(origin=GeoPoint(35.0, 33.0, 0.0))


class TestDepth:
    def test_estimate_within_noise(self):
        estimator = MonocularDepthEstimator(rng=np.random.default_rng(0))
        estimates = [estimator.estimate(50.0)[0] for _ in range(200)]
        assert np.mean(estimates) == pytest.approx(50.0, abs=1.0)

    def test_sigma_grows_with_range(self):
        estimator = MonocularDepthEstimator(rng=np.random.default_rng(0))
        _, sigma_near = estimator.estimate(10.0)
        _, sigma_far = estimator.estimate(100.0)
        assert sigma_far > sigma_near

    def test_sigma_floor_at_close_range(self):
        estimator = MonocularDepthEstimator(
            rng=np.random.default_rng(0), floor_sigma_m=0.3
        )
        _, sigma = estimator.estimate(1.0)
        assert sigma == 0.3

    def test_rejects_out_of_envelope(self):
        estimator = MonocularDepthEstimator(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            estimator.estimate(500.0)
        with pytest.raises(ValueError):
            estimator.estimate(-1.0)

    def test_estimate_always_positive(self):
        estimator = MonocularDepthEstimator(
            rng=np.random.default_rng(0), relative_sigma=0.5
        )
        assert all(estimator.estimate(1.0)[0] > 0.0 for _ in range(100))


class TestDetector:
    def make(self, seed=0):
        return DroneDetector(rng=np.random.default_rng(seed))

    def test_detection_probability_falls_with_range(self):
        detector = self.make()
        assert detector.detection_probability(10.0) > detector.detection_probability(100.0)
        assert detector.detection_probability(200.0) == 0.0

    def test_camera_health_scales_probability(self):
        detector = self.make()
        assert detector.detection_probability(50.0, camera_health=0.5) == pytest.approx(
            0.5 * detector.detection_probability(50.0)
        )

    def test_observation_geometry(self):
        detector = self.make()
        # Target due north, 20 m away, 10 m higher.
        detection = None
        for _ in range(20):
            detection = detector.observe(
                "obs", "tgt", (0.0, 0.0, 10.0), (0.0, 20.0, 20.0), now=0.0
            )
            if detection:
                break
        assert detection is not None
        assert detection.bearing_deg == pytest.approx(0.0, abs=5.0) or detection.bearing_deg > 355.0
        assert detection.elevation_deg == pytest.approx(26.6, abs=5.0)
        assert detection.range_m == pytest.approx(math.sqrt(500), rel=0.15)

    def test_zero_distance_returns_none(self):
        detector = self.make()
        assert detector.observe("a", "b", (0, 0, 0), (0, 0, 0), 0.0) is None

    def test_out_of_range_never_detected(self):
        detector = self.make()
        for _ in range(50):
            assert (
                detector.observe("a", "b", (0, 0, 0), (500.0, 0, 0), 0.0) is None
            )


def make_sighting(observer, target, rng, seed_offset=0):
    detector = DroneDetector(rng=rng)
    detection = None
    while detection is None:
        detection = detector.observe("obs", "uav1", observer, target, now=1.0)
    return Sighting(detection=detection, observer_enu=observer)


class TestTriangulation:
    def test_single_sighting_position_accuracy(self):
        rng = np.random.default_rng(3)
        target = (30.0, 40.0, 20.0)
        errors = []
        for _ in range(50):
            sighting = make_sighting((0.0, 0.0, 15.0), target, rng)
            position, sigma = sighting_to_position(sighting)
            errors.append(math.dist(position, target))
            assert sigma > 0.0
        assert np.mean(errors) < 5.0

    def test_geodetic_form_consistent_with_enu(self):
        rng = np.random.default_rng(4)
        target = (25.0, 35.0, 18.0)
        sighting = make_sighting((0.0, 0.0, 15.0), target, rng)
        enu_pos, _ = sighting_to_position(sighting)
        geo = sighting_to_geopoint(sighting, FRAME)
        back = FRAME.to_enu(geo)
        assert math.dist(back[:2], enu_pos[:2]) < 0.5
        assert back[2] == pytest.approx(enu_pos[2], abs=0.2)

    def test_localizer_rejects_wrong_target(self):
        rng = np.random.default_rng(5)
        localizer = CollaborativeLocalizer(target_id="uav9")
        sighting = make_sighting((0.0, 0.0, 15.0), (10.0, 10.0, 15.0), rng)
        with pytest.raises(ValueError):
            localizer.add_sighting(sighting)

    def test_fusion_reduces_uncertainty(self):
        rng = np.random.default_rng(6)
        target = (30.0, 40.0, 20.0)
        observers = [(0.0, 0.0, 15.0), (60.0, 0.0, 15.0), (30.0, 80.0, 15.0)]
        single = CollaborativeLocalizer(target_id="uav1")
        single.add_sighting(make_sighting(observers[0], target, rng))
        single_estimate = single.estimate(1.0)

        multi = CollaborativeLocalizer(target_id="uav1")
        for observer in observers:
            multi.add_sighting(make_sighting(observer, target, rng))
        multi_estimate = multi.estimate(1.0)
        assert multi_estimate.sigma_m < single_estimate.sigma_m
        assert multi_estimate.n_sightings == 3

    def test_estimate_accuracy_with_two_collaborators(self):
        rng = np.random.default_rng(7)
        target = (30.0, 40.0, 20.0)
        errors = []
        for _ in range(30):
            localizer = CollaborativeLocalizer(target_id="uav1")
            for observer in ((10.0, 20.0, 15.0), (50.0, 60.0, 18.0)):
                localizer.add_sighting(make_sighting(observer, target, rng))
            estimate = localizer.estimate(1.0)
            errors.append(math.dist(estimate.enu, target))
        assert np.mean(errors) < 2.0

    def test_stale_sightings_expire(self):
        rng = np.random.default_rng(8)
        localizer = CollaborativeLocalizer(target_id="uav1", max_age_s=2.0)
        localizer.add_sighting(make_sighting((0.0, 0.0, 15.0), (10.0, 10.0, 15.0), rng))
        assert localizer.estimate(1.5) is not None
        assert localizer.estimate(10.0) is None

    def test_no_sightings_returns_none(self):
        localizer = CollaborativeLocalizer(target_id="uav1")
        assert localizer.estimate(0.0) is None
        assert localizer.latest is None


class TestKalman:
    def test_requires_initialisation(self):
        kf = ConstantVelocityKalman()
        with pytest.raises(RuntimeError):
            kf.predict(1.0)
        with pytest.raises(RuntimeError):
            _ = kf.position

    def test_first_update_initialises(self):
        kf = ConstantVelocityKalman()
        kf.update((1.0, 2.0, 3.0), sigma_m=0.5, now=0.0)
        assert kf.position == pytest.approx((1.0, 2.0, 3.0))

    def test_tracks_constant_velocity_target(self):
        kf = ConstantVelocityKalman()
        rng = np.random.default_rng(9)
        errors = []
        for k in range(80):
            t = k * 0.5
            truth = (2.0 * t, 1.0 * t, 10.0)
            meas = tuple(p + rng.normal(0.0, 0.5) for p in truth)
            kf.update(meas, sigma_m=0.5, now=t)
            if k > 20:
                errors.append(math.dist(kf.position, truth))
        assert np.mean(errors) < 0.7

    def test_smoothing_beats_raw_measurements(self):
        kf = ConstantVelocityKalman()
        rng = np.random.default_rng(10)
        kf_errors, raw_errors = [], []
        for k in range(100):
            t = k * 0.5
            truth = (3.0 * t, 0.0, 10.0)
            meas = tuple(p + rng.normal(0.0, 1.0) for p in truth)
            kf.update(meas, sigma_m=1.0, now=t)
            if k > 30:
                kf_errors.append(math.dist(kf.position, truth))
                raw_errors.append(math.dist(meas, truth))
        assert np.mean(kf_errors) < np.mean(raw_errors)

    def test_prediction_bridges_gaps(self):
        kf = ConstantVelocityKalman()
        for k in range(40):
            t = k * 0.5
            kf.update((2.0 * t, 0.0, 10.0), sigma_m=0.3, now=t)
        kf.predict(25.0)  # 5 s gap
        assert kf.position[0] == pytest.approx(50.0, abs=2.0)

    def test_rejects_time_reversal(self):
        kf = ConstantVelocityKalman()
        kf.update((0.0, 0.0, 0.0), sigma_m=1.0, now=5.0)
        with pytest.raises(ValueError):
            kf.predict(1.0)

    def test_sigma_shrinks_with_updates(self):
        kf = ConstantVelocityKalman()
        kf.update((0.0, 0.0, 0.0), sigma_m=2.0, now=0.0)
        initial = kf.position_sigma_m
        for k in range(1, 20):
            kf.update((0.0, 0.0, 0.0), sigma_m=2.0, now=float(k))
        assert kf.position_sigma_m < initial
