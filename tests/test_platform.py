"""Unit tests for the multi-UAV control platform layers."""

import numpy as np
import pytest

from repro.core.uav_network import UavConSertNetwork
from repro.geo import EnuFrame, GeoPoint
from repro.middleware.rosbus import RosBus
from repro.platform.database import AccessDenied, DatabaseManager, DbRequest
from repro.platform.gcs import GroundControlStation
from repro.platform.gui import render_fleet_status, render_mission_panel
from repro.platform.task_manager import TaskManager, TaskService
from repro.platform.uav_manager import UavManager
from repro.uav.uav import FlightMode, Uav, UavSpec

FRAME = EnuFrame(origin=GeoPoint(35.0, 33.0, 0.0))


class TestDatabaseManager:
    def test_put_get_roundtrip(self):
        db = DatabaseManager()
        db.put("locations", "uav1", {"east": 1.0})
        assert db.get("locations", "uav1") == {"east": 1.0}

    def test_get_missing_returns_none(self):
        db = DatabaseManager()
        assert db.get("locations", "nope") is None

    def test_query_snapshot(self):
        db = DatabaseManager()
        db.put("c", "a", 1)
        db.put("c", "b", 2)
        assert db.query("c") == {"a": 1, "b": 2}

    def test_delete(self):
        db = DatabaseManager()
        db.put("c", "a", 1)
        assert db.handle(DbRequest("10.0.0.2", "delete", "c", "a")) is True
        assert db.handle(DbRequest("10.0.0.2", "delete", "c", "a")) is False

    def test_rejects_external_origin(self):
        db = DatabaseManager()
        with pytest.raises(AccessDenied):
            db.handle(DbRequest("203.0.113.9", "get", "c", "a"))

    def test_rejects_malformed_origin(self):
        db = DatabaseManager()
        with pytest.raises(AccessDenied):
            db.handle(DbRequest("not-an-ip", "get", "c", "a"))

    def test_rejects_unknown_operation(self):
        db = DatabaseManager()
        with pytest.raises(ValueError):
            db.handle(DbRequest("10.0.0.2", "frobnicate", "c"))

    def test_put_requires_key(self):
        db = DatabaseManager()
        with pytest.raises(ValueError):
            db.handle(DbRequest("10.0.0.2", "put", "c", None, 1))

    def test_audit_log_records_accesses(self):
        db = DatabaseManager()
        db.put("c", "a", 1, origin_ip="10.0.0.7")
        assert db.audit_log == [("10.0.0.7", "put", "c")]

    def test_denied_access_not_logged(self):
        db = DatabaseManager()
        with pytest.raises(AccessDenied):
            db.handle(DbRequest("8.8.8.8", "query", "c"))
        assert db.audit_log == []


def build_platform():
    bus = RosBus()
    db = DatabaseManager()
    manager = UavManager(bus=bus, database=db)
    rng = np.random.default_rng(0)
    uavs = []
    for i in range(3):
        uav = Uav(
            spec=UavSpec(uav_id=f"uav{i + 1}", base_position=(i * 50.0, 0.0, 0.0)),
            frame=FRAME,
            bus=bus,
            rng=rng,
        )
        manager.connect(uav)
        uavs.append(uav)
    return bus, db, manager, uavs


class TestUavManager:
    def test_connect_registers(self):
        _, _, manager, _ = build_platform()
        assert sorted(manager.registry) == ["uav1", "uav2", "uav3"]
        assert manager.registry["uav1"].uav_type == "DJI-M300-RTK"

    def test_duplicate_connect_rejected(self):
        bus, db, manager, uavs = build_platform()
        with pytest.raises(ValueError):
            manager.connect(uavs[0])

    def test_telemetry_updates_registry_and_database(self):
        bus, db, manager, uavs = build_platform()
        uavs[0].start_mission([(200.0, 200.0, 20.0)])
        for i in range(1, 20):
            bus.advance_clock(i * 0.5)
            uavs[0].step(0.5, i * 0.5)
        record = manager.registry["uav1"]
        assert record.connected
        assert record.mode == "mission"
        assert db.get("uav_locations", "uav1") is not None

    def test_command_translation(self):
        _, _, manager, uavs = build_platform()
        manager.command("uav1", "start_mission", waypoints=[(5.0, 5.0, 10.0)])
        assert uavs[0].mode is FlightMode.MISSION
        manager.command("uav1", "hold")
        assert uavs[0].mode is FlightMode.HOLD
        manager.command("uav1", "return_to_base")
        assert uavs[0].mode is FlightMode.RETURN_TO_BASE
        manager.command("uav1", "emergency_land")
        assert uavs[0].mode is FlightMode.EMERGENCY_LAND
        manager.command("uav1", "goto", setpoint=(1.0, 2.0, 3.0))
        assert uavs[0].mode is FlightMode.GUIDED

    def test_unknown_command_rejected(self):
        _, _, manager, _ = build_platform()
        with pytest.raises(ValueError):
            manager.command("uav1", "teleport")

    def test_unknown_uav_rejected(self):
        _, _, manager, _ = build_platform()
        with pytest.raises(KeyError):
            manager.command("uav9", "hold")

    def test_broadcast(self):
        _, _, manager, uavs = build_platform()
        manager.broadcast("hold")
        assert all(u.mode is FlightMode.HOLD for u in uavs)

    def test_fleet_status_sorted(self):
        _, _, manager, _ = build_platform()
        assert [r.uav_id for r in manager.fleet_status()] == ["uav1", "uav2", "uav3"]


class TestTaskManager:
    def test_builtin_sar_service_available(self):
        _, _, manager, _ = build_platform()
        tasks = TaskManager(uav_manager=manager)
        assert "sar_coverage" in tasks.available_services()

    def test_sar_coverage_starts_all_uavs(self):
        _, _, manager, uavs = build_platform()
        tasks = TaskManager(uav_manager=manager)
        result = tasks.execute("sar_coverage", {"altitude_m": 25.0})
        assert set(result["assignments"]) == {"uav1", "uav2", "uav3"}
        assert all(u.mode is FlightMode.MISSION for u in uavs)

    def test_register_custom_service(self):
        _, _, manager, _ = build_platform()
        tasks = TaskManager(uav_manager=manager)
        tasks.register(
            TaskService("noop", "does nothing", run=lambda m, p: "done")
        )
        assert tasks.execute("noop") == "done"
        assert ("noop", {}) in tasks.run_log

    def test_duplicate_registration_rejected(self):
        _, _, manager, _ = build_platform()
        tasks = TaskManager(uav_manager=manager)
        with pytest.raises(ValueError):
            tasks.register(TaskService("sar_coverage", "dup", run=lambda m, p: None))

    def test_unknown_service_rejected(self):
        _, _, manager, _ = build_platform()
        tasks = TaskManager(uav_manager=manager)
        with pytest.raises(KeyError):
            tasks.execute("nope")


class TestGcs:
    def test_low_battery_warning_once(self):
        bus, db, manager, uavs = build_platform()
        gcs = GroundControlStation(bus=bus, uav_manager=manager)
        gcs.watch_uav("uav1")
        uavs[0].battery.soc = 0.2
        uavs[0].start_mission([(10.0, 0.0, 10.0)])
        for i in range(1, 30):
            bus.advance_clock(i * 0.5)
            uavs[0].step(0.5, i * 0.5)
        warnings = gcs.logs_at_level("warning")
        assert len(warnings) == 1
        assert "battery low" in warnings[0].message

    def test_log_rejects_unknown_level(self):
        bus, db, manager, _ = build_platform()
        gcs = GroundControlStation(bus=bus, uav_manager=manager)
        with pytest.raises(ValueError):
            gcs.log(0.0, "x", "noisy", "msg")

    def test_mission_decision_through_decider(self):
        bus, db, manager, _ = build_platform()
        gcs = GroundControlStation(bus=bus, uav_manager=manager)
        for i in range(3):
            network = UavConSertNetwork(uav_id=f"uav{i + 1}")
            network.set_reliability_level("high")
            gcs.decider.add_uav(network)
        decision = gcs.mission_decision()
        assert decision.verdict.value == "mission_completed_as_planned"


class TestGui:
    def test_fleet_status_renders_all_uavs(self):
        _, _, manager, _ = build_platform()
        text = render_fleet_status(manager.fleet_status())
        for uav_id in ("uav1", "uav2", "uav3"):
            assert uav_id in text
        assert "BATT" in text

    def test_mission_panel_renders_verdict(self):
        from repro.core.decider import MissionDecider

        decider = MissionDecider()
        for i in range(2):
            network = UavConSertNetwork(uav_id=f"uav{i + 1}")
            network.set_reliability_level("high" if i == 0 else "low")
            decider.add_uav(network)
        decision = decider.decide()
        text = render_mission_panel(decision)
        assert decision.verdict.value in text
        assert "uav2" in text
