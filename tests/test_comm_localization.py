"""Unit tests for communication-based localization (RF multilateration)."""

import math

import numpy as np
import pytest

from repro.localization.comm import (
    CommLocalizationService,
    CommLocalizer,
    RfRangingModel,
)

ANCHORS = {
    "uav2": (0.0, 0.0, 30.0),
    "uav3": (100.0, 0.0, 25.0),
    "gcs": (50.0, 120.0, 2.0),
    "relay": (-40.0, 80.0, 15.0),
}
TARGET = (40.0, 50.0, 20.0)


def measure_all(rng_seed=0, anchors=None, sigma=0.3):
    rng = np.random.default_rng(rng_seed)
    model = RfRangingModel(rng=rng, base_sigma_m=sigma)
    out = []
    for anchor_id, anchor in (anchors or ANCHORS).items():
        m = model.measure(anchor_id, anchor, TARGET, now=1.0)
        assert m is not None
        out.append(m)
    return out


class TestRfRangingModel:
    def test_unbiased_within_noise(self):
        rng = np.random.default_rng(0)
        model = RfRangingModel(rng=rng)
        truth = math.dist(ANCHORS["uav2"], TARGET)
        ranges = [
            model.measure("uav2", ANCHORS["uav2"], TARGET, 0.0).range_m
            for _ in range(300)
        ]
        assert np.mean(ranges) == pytest.approx(truth, abs=0.2)

    def test_sigma_grows_with_distance(self):
        rng = np.random.default_rng(0)
        model = RfRangingModel(rng=rng)
        near = model.measure("a", (0, 0, 0), (10.0, 0, 0), 0.0)
        far = model.measure("a", (0, 0, 0), (250.0, 0, 0), 0.0)
        assert far.sigma_m > near.sigma_m

    def test_out_of_budget_link_fails(self):
        rng = np.random.default_rng(0)
        model = RfRangingModel(rng=rng, max_range_m=100.0)
        assert model.measure("a", (0, 0, 0), (200.0, 0, 0), 0.0) is None

    def test_coincident_positions_fail(self):
        rng = np.random.default_rng(0)
        model = RfRangingModel(rng=rng)
        assert model.measure("a", TARGET, TARGET, 0.0) is None


class TestCommLocalizer:
    def test_four_anchor_solve_accuracy(self):
        # The anchors are nearly coplanar (poor vertical geometry), so the
        # altitude prior carries the vertical axis, as in deployment.
        solver = CommLocalizer()
        errors = []
        for seed in range(20):
            fix = solver.solve(
                measure_all(seed), initial_guess=(0.0, 0.0, 0.0), altitude_prior=20.0
            )
            assert fix.converged
            errors.append(math.dist(fix.enu, TARGET))
        assert np.mean(errors) < 1.0

    def test_three_anchors_need_altitude_prior(self):
        solver = CommLocalizer()
        three = measure_all()[:3]
        fix = solver.solve(three, initial_guess=(30.0, 30.0, 15.0), altitude_prior=20.0)
        assert fix is not None
        assert math.dist(fix.enu, TARGET) < 4.0

    def test_too_few_anchors_returns_none(self):
        solver = CommLocalizer()
        assert solver.solve(measure_all()[:2], initial_guess=(0, 0, 0)) is None

    def test_duplicate_anchor_measurements_deduplicated(self):
        solver = CommLocalizer()
        measurements = measure_all()[:2]
        # Same anchor twice does not count as a third anchor.
        measurements.append(measurements[0])
        assert solver.solve(measurements, initial_guess=(0, 0, 0)) is None

    def test_residual_reflects_noise_scale(self):
        solver = CommLocalizer()
        clean = solver.solve(measure_all(sigma=0.05), (0, 0, 0))
        noisy = solver.solve(measure_all(sigma=3.0, rng_seed=1), (0, 0, 0))
        assert clean.residual_rms_m < noisy.residual_rms_m


class TestCommLocalizationService:
    def test_continuous_tracking(self):
        rng = np.random.default_rng(5)
        service = CommLocalizationService(
            target_id="uav1", ranging=RfRangingModel(rng=rng)
        )
        errors = []
        for k in range(20):
            now = k * 0.5
            target = (40.0 + 0.5 * now, 50.0, 20.0)
            fix = service.update(now, ANCHORS, target, altitude_prior=20.0)
            if fix is not None and k > 2:
                errors.append(math.dist(fix.enu, target))
        assert errors
        assert np.mean(errors) < 1.5

    def test_link_ok_requires_three_anchors(self):
        rng = np.random.default_rng(5)
        service = CommLocalizationService(
            target_id="uav1", ranging=RfRangingModel(rng=rng)
        )
        assert not service.link_ok
        service.update(0.0, dict(list(ANCHORS.items())[:2]), TARGET)
        assert not service.link_ok
        service.update(0.1, ANCHORS, TARGET)
        assert service.link_ok

    def test_window_expires_stale_measurements(self):
        rng = np.random.default_rng(5)
        service = CommLocalizationService(
            target_id="uav1", ranging=RfRangingModel(rng=rng), window_s=1.0
        )
        service.update(0.0, ANCHORS, TARGET)
        assert service.measurements
        service.update(10.0, {}, TARGET)
        assert not service.measurements
        assert not service.link_ok
