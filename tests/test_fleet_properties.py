"""Property-based invariants of the vectorized fleet engine.

Randomized fleets (1–64 UAVs), randomized waypoint plans, and randomized
fault schedules; every trial checks physical invariants the batched
NumPy kinematics must never violate, whatever the inputs:

- battery state of charge is monotonically non-increasing (there is no
  charger in the simulation; faults only ever drop it),
- no UAV teleports: per-step displacement is bounded by the speed limit
  (``v_max * dt``), and
- a landed UAV stays exactly where it touched down.

The scalar reference engine satisfies these by construction one UAV at a
time; the point here is that masking, batched clamps, and in-step mode
transitions in :mod:`repro.uav.fleet` preserve them for arbitrary fleet
shapes — including the single-UAV and power-of-two sizes that stress the
chunked noise buffers.

The predicates themselves live in :mod:`repro.harness.oracles`, shared
with the fuzzing campaign so the tests and the fuzzer enforce one
implementation of each invariant.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.common import build_three_uav_world
from repro.harness.oracles import (
    landed_step_ok,
    soc_step_ok,
    teleport_bound_m,
    teleport_step_ok,
)
from repro.uav.faults import (
    FaultSchedule,
    battery_collapse,
    gps_denial,
    gps_spoof,
    imu_failure,
    motor_failure,
)
from repro.uav.uav import FlightMode
from repro.uav.world import World

N_TRIALS = 50
STEPS_PER_TRIAL = 80

FAULT_FACTORIES = (
    lambda uav_id, at, rng: battery_collapse(
        uav_id, at, soc_drop_to=float(rng.uniform(0.1, 0.6))
    ),
    lambda uav_id, at, rng: gps_denial(
        uav_id, at, duration_s=float(rng.uniform(5.0, 30.0))
    ),
    lambda uav_id, at, rng: gps_spoof(
        uav_id, at, offset_m=tuple(rng.uniform(-50.0, 50.0, size=3))
    ),
    lambda uav_id, at, rng: imu_failure(uav_id, at),
    lambda uav_id, at, rng: motor_failure(uav_id, at),
)


def _random_trial(trial: int):
    """Build one randomized fleet + fault schedule from the trial index."""
    rng = np.random.default_rng(1000 + trial)
    n_uavs = int(rng.integers(1, 65))
    scenario = build_three_uav_world(
        seed=trial, n_persons=0, n_uavs=n_uavs, engine="vectorized"
    )
    world = scenario.world
    for uav in world.uavs.values():
        n_wp = int(rng.integers(1, 5))
        waypoints = [
            (
                float(rng.uniform(0.0, world.area_size_m[0])),
                float(rng.uniform(0.0, world.area_size_m[1])),
                float(rng.uniform(5.0, 40.0)),
            )
            for _ in range(n_wp)
        ]
        uav.start_mission(waypoints)

    faults = FaultSchedule()
    for uav_id in rng.choice(
        list(world.uavs), size=min(n_uavs, int(rng.integers(1, 6))), replace=False
    ):
        factory = FAULT_FACTORIES[int(rng.integers(len(FAULT_FACTORIES)))]
        faults.add(factory(str(uav_id), float(rng.uniform(1.0, 30.0)), rng))
    return world, faults


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_random_fleet_invariants(trial):
    world, faults = _random_trial(trial)
    prev_soc = {u: uav.battery.soc for u, uav in world.uavs.items()}
    prev_pos = {u: uav.dynamics.position for u, uav in world.uavs.items()}
    landed_at: dict[str, tuple[float, float, float]] = {}

    for _ in range(STEPS_PER_TRIAL):
        now = world.step()
        faults.step(now, world.uavs)
        for uav_id, uav in world.uavs.items():
            soc = uav.battery.soc
            assert soc_step_ok(prev_soc[uav_id], soc), (
                f"trial {trial} {uav_id} t={now}: SoC rose "
                f"{prev_soc[uav_id]} -> {soc}"
            )
            prev_soc[uav_id] = soc

            pos = uav.dynamics.position
            assert teleport_step_ok(
                prev_pos[uav_id], pos, uav.dynamics.max_speed_mps, world.dt
            ), (
                f"trial {trial} {uav_id} t={now}: teleported "
                f"{math.dist(pos, prev_pos[uav_id]):.6f} m in one step "
                f"(bound {teleport_bound_m(uav.dynamics.max_speed_mps, world.dt):.6f} m)"
            )
            prev_pos[uav_id] = pos

            if uav_id in landed_at:
                assert landed_step_ok(landed_at[uav_id], pos), (
                    f"trial {trial} {uav_id} t={now}: drifted after landing"
                )
            elif uav.mode is FlightMode.LANDED:
                landed_at[uav_id] = pos


@pytest.mark.parametrize("trial", [2, 17, 33])
def test_random_fleet_matches_scalar_reference(trial):
    """Spot-check: randomized trials are also engine-equivalent, bit for bit."""
    world_v, faults_v = _random_trial(trial)

    # Rebuild the identical trial on the scalar engine: same trial seeds
    # drive the same construction, only the engine differs.
    rng = np.random.default_rng(1000 + trial)
    n_uavs = int(rng.integers(1, 65))
    scenario = build_three_uav_world(
        seed=trial, n_persons=0, n_uavs=n_uavs, engine="scalar"
    )
    world_s = scenario.world
    for uav in world_s.uavs.values():
        n_wp = int(rng.integers(1, 5))
        uav.start_mission(
            [
                (
                    float(rng.uniform(0.0, world_s.area_size_m[0])),
                    float(rng.uniform(0.0, world_s.area_size_m[1])),
                    float(rng.uniform(5.0, 40.0)),
                )
                for _ in range(n_wp)
            ]
        )
    faults_s = FaultSchedule()
    for uav_id in rng.choice(
        list(world_s.uavs), size=min(n_uavs, int(rng.integers(1, 6))), replace=False
    ):
        factory = FAULT_FACTORIES[int(rng.integers(len(FAULT_FACTORIES)))]
        faults_s.add(factory(str(uav_id), float(rng.uniform(1.0, 30.0)), rng))

    for _ in range(STEPS_PER_TRIAL):
        now_v = world_v.step()
        faults_v.step(now_v, world_v.uavs)
        now_s = world_s.step()
        faults_s.step(now_s, world_s.uavs)
        for uav_id, uav in world_s.uavs.items():
            peer = world_v.uavs[uav_id]
            assert uav.dynamics.position == peer.dynamics.position
            assert uav.battery.soc == peer.battery.soc
            assert uav.battery.temp_c == peer.battery.temp_c
            assert uav.mode is peer.mode


class TestZeroUavWorld:
    """Regression: a UAV-less world steps cleanly on both engines.

    Campaign smoke grids legitimately build empty worlds; ``World.step``
    short-circuits to a pure clock advance instead of running (and
    instrumenting) a fleet step over nothing.
    """

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_step_advances_clocks_only(self, engine):
        world = World(engine=engine)
        assert world.uavs == {}
        for expected_steps in range(1, 6):
            now = world.step()
            assert now == pytest.approx(expected_steps * world.dt)
            assert world.bus.clock == now
        assert len(world.bus.traffic) == 0

    def test_run_until_terminates(self):
        world = World(engine="vectorized")
        world.run_until(10.0)
        assert world.time == pytest.approx(10.0)

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_uav_added_after_empty_steps_flies(self, engine):
        # The short-circuit must not wedge a world that gains UAVs later.
        from repro.experiments.common import uav_rng_streams
        from repro.uav.battery import BatterySpec
        from repro.uav.uav import Uav, UavSpec

        world = World(engine=engine)
        world.step()
        (rng,) = uav_rng_streams(seed=5, n_uavs=1)
        uav = Uav(
            spec=UavSpec(
                uav_id="late", base_position=(10.0, 10.0, 0.0),
                battery_spec=BatterySpec(),
            ),
            frame=world.frame,
            bus=world.bus,
            rng=rng,
        )
        world.add_uav(uav)
        uav.start_mission([(50.0, 50.0, 20.0)])
        for _ in range(20):
            world.step()
        assert uav.dynamics.position != (10.0, 10.0, 0.0)
