"""The degraded-link transport layer and its assurance-loop integration.

Covers the PR's acceptance criteria: (a) a bare DegradedBus is
byte-for-byte equivalent to RosBus on an existing fleet experiment,
(b) a scripted partition demotes the affected UAV's EDDI guarantee within
one staleness window and the guarantee recovers after the partition
heals, (c) ReliableChannel's retry count stays bounded (capped backoff)
across a 30 s blackout — plus unit coverage of LinkModel, the comm fault
factories, and the link-state gating of CommLocalizationService.
"""

import math

import numpy as np
import pytest

from repro.core.adapters import attach_degraded_comm, build_uav_eddi
from repro.core.uav_network import UavGuarantee
from repro.experiments.common import build_three_uav_world
from repro.localization.comm import (
    CommLocalizationService,
    CommLocalizer,
    RangeMeasurement,
    RfRangingModel,
)
from repro.middleware.degraded import DegradedBus, LinkModel
from repro.middleware.reliable import ReliableChannel
from repro.middleware.rosbus import RosBus
from repro.safedrones.communication import GilbertElliottChannel
from repro.sar.coverage import boustrophedon_path
from repro.uav.faults import (
    FaultSchedule,
    comm_blackout,
    comm_degradation,
    network_partition,
)
from repro.uav.uav import FlightMode

MISSION_CAPABLE = (
    UavGuarantee.CONTINUE_MISSION_EXTRA,
    UavGuarantee.CONTINUE_MISSION,
)


def _traffic_fingerprint(bus):
    return [
        (m.topic, m.sender, m.origin, m.seq, m.stamp, m.data) for m in bus.traffic
    ]


def _run_fleet_mission(bus, seed=11, steps=120):
    """The standard three-UAV coverage setup stepped for a fixed horizon."""
    scenario = build_three_uav_world(seed=seed, n_persons=4, bus=bus)
    world = scenario.world
    for i, uav in enumerate(world.uavs.values()):
        strip = ((120.0 * i, 120.0 * (i + 1)), (0.0, 200.0))
        uav.start_mission(boustrophedon_path(strip, 20.0))
    for _ in range(steps):
        world.step()
    return world


class TestDegradedBusEquivalence:
    def test_zero_loss_byte_for_byte_equivalent_to_rosbus(self):
        """Criterion (a): an unconfigured DegradedBus is a perfect RosBus."""
        world_ref = _run_fleet_mission(None)  # World's stock RosBus
        world_deg = _run_fleet_mission(DegradedBus())
        ref, deg = _traffic_fingerprint(world_ref.bus), _traffic_fingerprint(world_deg.bus)
        assert len(ref) > 100
        assert deg == ref
        for uav_id in world_ref.uavs:
            assert (
                world_deg.uavs[uav_id].trajectory == world_ref.uavs[uav_id].trajectory
            )

    def test_zero_loss_with_perfect_links_still_equivalent(self):
        """Explicit all-pass links change nothing either."""
        bus = DegradedBus()
        bus.set_link("uav1", "uav2", LinkModel())
        bus.set_link("uav2", "uav3", LinkModel())
        world_deg = _run_fleet_mission(bus)
        world_ref = _run_fleet_mission(None)
        assert _traffic_fingerprint(world_deg.bus) == _traffic_fingerprint(
            world_ref.bus
        )

    def test_subscribers_and_interceptors_keep_working(self):
        bus = DegradedBus()
        received = []
        bus.subscribe("/t", "n", received.append)
        bus.add_interceptor(lambda m: None if m.data == "drop" else m)
        assert bus.publish("/t", "drop", sender="s") is None
        message = bus.publish("/t", "keep", sender="s")
        assert [m.data for m in received] == ["keep"]
        assert message.origin == "s"


class TestLinkModel:
    def test_uniform_loss_ratio(self):
        link = LinkModel(rng=np.random.default_rng(0), loss_probability=0.4)
        outcomes = [link.transmit(0.0) is not None for _ in range(4000)]
        assert 0.55 < sum(outcomes) / len(outcomes) < 0.65
        assert link.stats.sent == 4000
        assert math.isclose(
            link.stats.delivery_ratio, sum(outcomes) / len(outcomes)
        )

    def test_gilbert_elliott_channel_plugs_in(self):
        channel = GilbertElliottChannel(
            rng=np.random.default_rng(3), loss_good=0.0, loss_bad=1.0,
            p_good_to_bad=0.5, p_bad_to_good=0.5,
        )
        link = LinkModel(channel=channel)
        delivered = 0
        for _ in range(2000):
            link.step(0.5)
            if link.transmit(0.0) is not None:
                delivered += 1
        # Stationary bad fraction is 0.5 and BAD loses everything.
        assert 0.4 < delivered / 2000 < 0.6

    def test_latency_and_jitter_delay_delivery(self):
        link = LinkModel(rng=np.random.default_rng(1), latency_s=0.3, jitter_s=0.2)
        deliver_at = link.transmit(10.0)
        assert 10.3 <= deliver_at <= 10.5
        assert link.stats.delayed == 1

    def test_bandwidth_cap_drops_excess(self):
        link = LinkModel(bandwidth_msgs_per_s=3)
        sent = [link.transmit(0.1 * i) is not None for i in range(10)]
        assert sum(sent[:10]) == 3  # one 1-s bucket admits only 3
        assert link.stats.dropped_bandwidth == 7
        assert link.transmit(1.5) is not None  # next bucket reopens

    def test_scheduled_outage_blacks_out_window(self):
        link = LinkModel()
        link.schedule_outage(5.0, 8.0)
        assert link.transmit(4.9) is not None
        assert link.transmit(5.0) is None
        assert link.transmit(7.9) is None
        assert link.transmit(8.0) is not None
        assert link.stats.dropped_outage == 2

    def test_invalid_loss_probability_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(loss_probability=1.2)


class TestDegradedBusTransport:
    def _bus_with_pair(self, **link_kwargs):
        bus = DegradedBus()
        link = bus.set_link("a", "b", LinkModel(**link_kwargs))
        received = []
        bus.subscribe("/t", "b", received.append)
        return bus, link, received

    def test_lossy_link_drops_subscriber_copies(self):
        bus, link, received = self._bus_with_pair(
            rng=np.random.default_rng(0), loss_probability=1.0
        )
        bus.publish("/t", 1, sender="a")
        assert received == []
        assert len(bus.traffic) == 1  # the IDS still saw the transmission

    def test_delayed_copy_arrives_on_advance_clock(self):
        bus, link, received = self._bus_with_pair(latency_s=1.0)
        bus.publish("/t", "late", sender="a")
        assert received == []
        assert bus.pending_count() == 1
        bus.advance_clock(0.5)
        assert received == []
        bus.advance_clock(1.0)
        assert [m.data for m in received] == ["late"]

    def test_delayed_copies_drain_in_timestamp_order(self):
        bus = DegradedBus()
        bus.set_link("a", "b", LinkModel(latency_s=2.0))
        bus.set_link("c", "b", LinkModel(latency_s=1.0))
        received = []
        bus.subscribe("/t", "b", received.append)
        bus.publish("/t", "slow", sender="a")
        bus.publish("/t", "fast", sender="c")
        bus.advance_clock(3.0)
        assert [m.data for m in received] == ["fast", "slow"]

    def test_unsubscribed_mid_flight_not_delivered(self):
        bus, link, received = self._bus_with_pair(latency_s=1.0)
        bus.publish("/t", 1, sender="a")
        bus._subs["/t"][0].unsubscribe()
        bus.advance_clock(2.0)
        assert received == []

    def test_node_blackout_cuts_both_directions(self):
        bus = DegradedBus()
        got_a, got_b = [], []
        bus.subscribe("/ta", "b", got_b.append)
        bus.subscribe("/tb", "a", got_a.append)
        bus.set_node_down("a")
        bus.publish("/ta", 1, sender="a")
        bus.publish("/tb", 1, sender="b")
        assert got_a == [] and got_b == []
        bus.set_node_down("a", False)
        bus.publish("/ta", 2, sender="a")
        assert [m.data for m in got_b] == [2]

    def test_partition_blocks_cross_group_only(self):
        bus = DegradedBus()
        got = {name: [] for name in ("a", "b", "c")}
        for name in got:
            bus.subscribe("/t", name, got[name].append)
        handle = bus.add_partition(("a",), ("b", "c"))
        bus.publish("/t", 1, sender="a")
        assert [m.data for m in got["a"]] == [1]  # self-delivery unaffected
        assert got["b"] == [] and got["c"] == []
        bus.publish("/t", 2, sender="b")
        assert [m.data for m in got["c"]] == [2]  # same-side traffic flows
        bus.remove_partition(handle)
        bus.publish("/t", 3, sender="a")
        assert [m.data for m in got["b"]] == [2, 3]  # 2 was b's self-delivery

    def test_node_loss_applies_to_either_endpoint(self):
        bus = DegradedBus(rng=np.random.default_rng(5))
        received = []
        bus.subscribe("/t", "b", received.append)
        bus.set_node_loss("b", 0.5)
        for _ in range(600):
            bus.publish("/t", 0, sender="a")
        assert 0.4 < len(received) / 600 < 0.6
        bus.set_node_loss("b", 0.0)
        before = len(received)
        bus.publish("/t", 0, sender="a")
        assert len(received) == before + 1


class TestCommFaultFactories:
    def _world(self, bus):
        scenario = build_three_uav_world(seed=2, n_persons=0, bus=bus)
        return scenario.world

    def test_comm_blackout_applies_and_clears(self):
        bus = DegradedBus()
        world = self._world(bus)
        schedule = FaultSchedule()
        schedule.add(
            comm_blackout(bus, "uav1", at_time=2.0, duration_s=3.0), world.uavs
        )
        while world.time < 10.0:
            world.step()
            schedule.step(world.time, world.uavs)
            if 2.0 <= world.time < 5.0:
                assert bus.node_down("uav1")
        assert not bus.node_down("uav1")
        assert [entry[2] for entry in schedule.log] == ["applied", "cleared"]

    def test_comm_degradation_sets_and_restores_loss(self):
        bus = DegradedBus()
        world = self._world(bus)
        schedule = FaultSchedule()
        schedule.add(
            comm_degradation(bus, "uav2", at_time=1.0, loss_probability=0.8,
                             duration_s=2.0),
            world.uavs,
        )
        schedule.step(1.0, world.uavs)
        assert bus._node_loss["uav2"] == 0.8
        schedule.step(3.5, world.uavs)
        assert "uav2" not in bus._node_loss

    def test_network_partition_fault_round_trip(self):
        bus = DegradedBus()
        world = self._world(bus)
        schedule = FaultSchedule()
        schedule.add(
            network_partition(bus, ("uav1",), ("uav2", "uav3"), at_time=0.5,
                              duration_s=4.0),
            world.uavs,
        )
        schedule.step(1.0, world.uavs)
        assert bus.partitioned("uav1", "uav3")
        assert not bus.partitioned("uav2", "uav3")
        schedule.step(5.0, world.uavs)
        assert not bus.partitioned("uav1", "uav3")

    def test_partition_groups_must_be_valid(self):
        bus = DegradedBus()
        with pytest.raises(ValueError):
            network_partition(bus, (), ("uav2",), at_time=0.0)
        with pytest.raises(ValueError):
            bus.add_partition(("uav1",), ("uav1", "uav2"))


class TestEddiStalenessDemotion:
    def _night_ops_world(self, bus, staleness_s=3.0):
        scenario = build_three_uav_world(seed=3, n_persons=0, bus=bus)
        world = scenario.world
        for uav in world.uavs.values():
            uav.sensors.gps.denied = True
            uav.sensors.camera.health = 0.2
            east, north, _ = uav.spec.base_position
            uav.dynamics.position = (east, north + 40.0, 20.0)
            uav.command_mode(FlightMode.HOLD)
        uav1 = world.uavs["uav1"]
        eddi, stack = build_uav_eddi(uav1, world, cl_range_m=500.0)
        attach_degraded_comm(
            eddi, stack, bus, peers=("uav2", "uav3"), staleness_s=staleness_s
        )
        return world, eddi, stack

    def test_partition_demotes_within_one_staleness_window_and_recovers(self):
        """Criterion (b): demote on scripted partition, recover on heal."""
        staleness_s = 3.0
        bus = DegradedBus()
        world, eddi, stack = self._night_ops_world(bus, staleness_s)
        schedule = FaultSchedule()
        schedule.add(
            network_partition(
                bus, ("uav1",), ("uav2", "uav3"), at_time=10.0, duration_s=20.0
            ),
            world.uavs,
        )

        trace = []
        while world.time < 50.0:
            world.step()
            schedule.step(world.time, world.uavs)
            trace.append((world.time, eddi.step(world.time)))

        def guarantee_at(t):
            return [g for (stamp, g) in trace if stamp <= t][-1]

        # Healthy mesh before the partition: mission-capable via CL.
        assert guarantee_at(9.5) in MISSION_CAPABLE
        # Within one staleness window (+2 cycles of slack) of the cut the
        # EDDI has demoted rather than reasoning over stale telemetry.
        demote_deadline = 10.0 + staleness_s + 2 * world.dt
        assert guarantee_at(demote_deadline) not in MISSION_CAPABLE
        # After the heal the delivery-ratio window refills and the
        # guarantee recovers.
        assert guarantee_at(49.9) in MISSION_CAPABLE
        demoted = [g for (stamp, g) in trace if g not in MISSION_CAPABLE]
        assert demoted, "the partition must actually demote the guarantee"

    def test_stale_adapter_flag_and_evidence(self):
        staleness_s = 2.0
        bus = DegradedBus()
        world, eddi, stack = self._night_ops_world(bus, staleness_s)
        bus.set_node_down("uav1")  # immediate blackout from t=0
        while world.time < 10.0:
            world.step()
            eddi.step(world.time)
        assert [a.name for a in eddi.stale_adapters()] == ["degraded-comm"]
        assert eddi.network.comm_localization.evaluate().name == (
            "comm_localization_unavailable"
        )
        # Traffic resumes -> watermark refreshes -> staleness clears.
        bus.set_node_down("uav1", False)
        while world.time < 14.0:
            world.step()
            eddi.step(world.time)
        assert eddi.stale_adapters() == []

    def test_sustained_loss_without_silence_also_demotes(self):
        """High loss keeps *some* packets flowing yet still demotes."""
        bus = DegradedBus()
        links = []
        for i, pair in enumerate((("uav1", "uav2"), ("uav1", "uav3"))):
            links.append(
                bus.set_link(
                    *pair,
                    LinkModel(
                        rng=np.random.default_rng(8 + i), loss_probability=0.9
                    ),
                )
            )
        world, eddi, stack = self._night_ops_world(bus)
        while world.time < 30.0:
            world.step()
            eddi.step(world.time)
        # The links were lossy, not silent: some packets did get through.
        assert sum(link.stats.delivered for link in links) > 0
        assert eddi.current_guarantee not in MISSION_CAPABLE


class TestReliableChannel:
    def _pair(self, bus, **kwargs):
        delivered = []
        alice = ReliableChannel(bus=bus, local="a", peer="b", **kwargs)
        bob = ReliableChannel(
            bus=bus, local="b", peer="a",
            on_deliver=lambda seq, data: delivered.append((seq, data)),
        )
        return alice, bob, delivered

    def test_clean_link_delivers_in_order_without_retries(self):
        bus = DegradedBus()
        alice, bob, delivered = self._pair(bus)
        for i in range(5):
            alice.send(f"m{i}", now=float(i))
            alice.step(float(i))
        assert delivered == [(i, f"m{i}") for i in range(5)]
        assert alice.stats.retries == 0
        assert alice.in_flight == 0

    def test_gap_detection_and_in_order_release(self):
        bus = DegradedBus()
        # Drop exactly the first copy of seq 1 via an interceptor.
        dropped = []

        def drop_once(message):
            if (
                message.topic.endswith("/a/b/data")
                and message.data["seq"] == 1
                and not dropped
            ):
                dropped.append(message)
                return None
            return message

        bus.add_interceptor(drop_once)
        alice, bob, delivered = self._pair(bus)
        for i in range(3):
            alice.send(f"m{i}", now=0.0)
        assert [seq for seq, _ in delivered] == [0]  # 2 buffered behind the gap
        assert bob.stats.gaps == 1
        bus.advance_clock(1.0)
        alice.step(1.0)  # retransmits seq 1; 2 releases right behind it
        assert [seq for seq, _ in delivered] == [0, 1, 2]

    def test_retry_count_bounded_during_30s_blackout(self):
        """Criterion (c): capped backoff bounds retries over a blackout."""
        bus = DegradedBus()
        alice, bob, delivered = self._pair(
            bus, retry_after_s=0.5, max_backoff_s=4.0, link_down_after_s=6.0
        )
        blackout = (5.0, 35.0)  # 30 s
        bus.set_node_down("a")
        link_events = []
        alice.on_link_change = link_events.append

        alice.send("payload", now=5.0)
        t = 5.0
        while t < 45.0:
            t += 0.5
            if t >= blackout[1]:
                bus.set_node_down("a", False)
            bus.advance_clock(t)
            alice.step(t)

        assert delivered == [(0, "payload")]
        assert alice.in_flight == 0
        # Doubling phase: ceil(log2(max/initial)) = 3 retries; capped
        # phase: one per max_backoff_s. Anything near-exponential or
        # per-step would blow far past this bound.
        duration = blackout[1] - blackout[0]
        bound = math.ceil(duration / 4.0) + math.ceil(math.log2(4.0 / 0.5)) + 3
        assert 3 <= alice.stats.retries <= bound
        # The sustained silence raised the explicit link-down signal, and
        # the first post-heal ack cleared it.
        assert link_events[0] is False
        assert link_events[-1] is True
        assert alice.link_up

    def test_duplicate_data_is_acked_but_not_redelivered(self):
        bus = DegradedBus()
        alice, bob, delivered = self._pair(bus)
        alice.send("once", now=0.0)
        # Force a spurious retransmit even though it was acked.
        alice._publish(0, "once")
        assert delivered == [(0, "once")]
        assert bob.stats.duplicates == 1

    def test_channel_close_unsubscribes(self):
        bus = DegradedBus()
        alice, bob, delivered = self._pair(bus)
        bob.close()
        alice.send("into the void", now=0.0)
        assert delivered == []


class TestCommLocalizationLinkGating:
    def _service(self):
        return CommLocalizationService(
            target_id="uav1",
            ranging=RfRangingModel(rng=np.random.default_rng(4)),
        )

    def _anchors(self):
        return {
            "uav2": (0.0, 0.0, 30.0),
            "uav3": (80.0, 0.0, 30.0),
            "uav4": (40.0, 70.0, 30.0),
        }

    def test_link_down_overrides_measurement_count(self):
        service = self._service()
        target = (30.0, 25.0, 20.0)
        service.update(0.0, self._anchors(), target, altitude_prior=20.0)
        assert service.link_ok
        # Transport reports the link down: measurements are still in the
        # window, but the guarantee must drop immediately.
        service.set_link_state(False)
        assert not service.link_ok
        # And no new ranging happens while down.
        before = len(service.measurements)
        service.update(0.5, self._anchors(), target, altitude_prior=20.0)
        assert len(service.measurements) <= before
        service.set_link_state(True)
        service.update(1.0, self._anchors(), target, altitude_prior=20.0)
        assert service.link_ok

    def test_solver_nonconvergence_returns_unconverged_fix(self):
        """Degenerate geometry yields converged=False, never an exception."""
        localizer = CommLocalizer()
        coincident = [
            RangeMeasurement(
                anchor_id=f"a{i}",
                anchor_enu=(0.0, 0.0, 0.0),
                range_m=10.0,
                sigma_m=0.3,
                stamp=0.0,
            )
            for i in range(3)
        ]
        fix = localizer.solve(coincident, initial_guess=(1.0, 1.0, 1.0))
        assert fix is not None  # must not raise, whatever the geometry

    def test_all_starts_failing_returns_unconverged_fix(self, monkeypatch):
        import repro.localization.comm as comm_mod

        def always_fails(*args, **kwargs):
            raise ValueError("x0 is infeasible")

        monkeypatch.setattr(comm_mod, "least_squares", always_fails)
        localizer = CommLocalizer()
        measurements = [
            RangeMeasurement(
                anchor_id=f"a{i}",
                anchor_enu=(30.0 * i, 10.0 * i, 0.0),
                range_m=25.0,
                sigma_m=0.3,
                stamp=0.0,
            )
            for i in range(3)
        ]
        fix = localizer.solve(measurements, initial_guess=(5.0, 5.0, 5.0))
        assert fix is not None
        assert not fix.converged
        assert fix.enu == (5.0, 5.0, 5.0)
        assert math.isinf(fix.residual_rms_m)
