"""Golden assurance-trace regression: one pinned trace, two engines.

The assurance plane promises bit-identical behaviour between its scalar
and batched implementations (see ``tests/test_assurance_equivalence.py``
for the pairwise proof). This file pins the *absolute* behaviour too:
one scenario's full assurance history — guarantee transitions, EDDI
responses, per-cycle mission verdicts, final SafeDrones numbers — is
stored hex-float in ``tests/data/golden_assurance_trace.json`` and both
engines must reproduce it exactly. A refactor that shifts assurance
semantics now fails against the golden even if it shifts both engines
in lockstep (which the differential suite alone would not catch).

If a change is *supposed* to move the trace (ConSert rewiring, monitor
model fix), regenerate and review the diff like any other code:

    PYTHONPATH=src python tests/test_golden_assurance.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.batch import build_assurance
from repro.scenario import load_scenario_json

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_assurance_trace.json"
SCENARIO_PATH = (
    Path(__file__).parent.parent / "scenarios" / "windy_night_sar.json"
)
#: Long enough to cross both scripted faults (camera 40 s, GPS denial
#: 90 s) with margin for the resulting demotions to land.
HORIZON_S = 120.0
EDDI_PERIOD_S = 2.0


def collect_assurance_trace(engine: str) -> dict:
    """Run the pinned scenario's assurance plane; hex-float history."""
    scenario = load_scenario_json(SCENARIO_PATH.read_text(), engine=engine)
    world = scenario.world
    plane = build_assurance(world)
    dt = world.dt
    steps = int(round(HORIZON_S / dt))
    cycle_every = max(1, int(round(EDDI_PERIOD_S / dt)))
    verdicts: list[str] = []
    for i in range(1, steps + 1):
        now = scenario.step()
        if i % cycle_every == 0:
            plane.step(now)
            verdicts.append(plane.decide().verdict.name)
    uavs = {}
    for uav_id in plane.uav_ids:
        assessment = plane.assessment(uav_id)
        uavs[uav_id] = {
            "guarantee_trace": [
                [t.hex(), g.name] for t, g in plane.guarantee_trace(uav_id)
            ],
            "responses": [
                [
                    r.stamp.hex(),
                    r.previous.name if r.previous is not None else None,
                    r.guarantee.name,
                ]
                for r in plane.response_log(uav_id)
            ],
            "final_evidence": plane.evidence(uav_id),
            "final_offers": plane.consert_offers(uav_id),
            "final_pof": assessment.failure_probability.hex(),
            "final_battery_pof": assessment.battery_pof.hex(),
            "final_processor_pof": assessment.processor_pof.hex(),
            "final_level": assessment.level.name,
        }
    return {
        "scenario": SCENARIO_PATH.name,
        "horizon_s": HORIZON_S,
        "eddi_period_s": EDDI_PERIOD_S,
        "verdicts": verdicts,
        "uavs": uavs,
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.is_file(), (
        f"{GOLDEN_PATH} missing — regenerate with "
        "`PYTHONPATH=src python tests/test_golden_assurance.py`"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("engine", ["scalar", "vectorized"])
def test_assurance_trace_pinned(engine, golden):
    # Hex-float encoding leaves no tolerance to hide behind: both
    # engines must reproduce the golden to the last bit.
    assert collect_assurance_trace(engine) == golden


def test_golden_records_real_transitions(golden):
    # Meta-check: the pinned scenario actually demotes someone (a golden
    # full of CONTINUE_MISSION_EXTRA would pin nothing interesting).
    transitions = sum(
        len(uav["responses"]) for uav in golden["uavs"].values()
    )
    assert transitions >= 2
    assert len(set(golden["verdicts"])) >= 1


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(collect_assurance_trace("scalar"), indent=2, sort_keys=True)
        + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
