"""End-to-end campaign service over real HTTP on an ephemeral port.

One :class:`~repro.service.api.ServiceThread` per module (job processes
are spawned, so each boot costs real time) exercises the full surface:
submit → live NDJSON tail → terminal record whose fingerprint equals a
direct :func:`run_campaign` of the same config, plus structured 400s,
cancel/resume over HTTP, the experiment catalogue, and a Prometheus
scrape that stays well-formed while jobs run.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

import repro.experiments.campaigns  # noqa: F401  (registers experiments)
from repro.harness.campaign import run_campaign
from repro.service.api import PROM_CONTENT_TYPE, ServiceThread

SLEEPY_GRID = [{"n": 64, "loc": 0.0, "sleep_s": 0.2} for _ in range(10)]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("service")
    with ServiceThread(
        jobs_root=root / "jobs", cache_root=root / "cache", max_jobs=2
    ) as svc:
        yield svc


def request(server, method: str, path: str, payload=None):
    """One HTTP round trip; returns (status, content-type, parsed body)."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        server.base_url + path, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            status, ctype = resp.status, resp.headers.get("Content-Type")
            raw = resp.read().decode()
    except urllib.error.HTTPError as exc:
        status, ctype = exc.code, exc.headers.get("Content-Type")
        raw = exc.read().decode()
    body = json.loads(raw) if ctype == "application/json" else raw
    return status, ctype, body


def tail_stream(server, job_id: str) -> list[dict]:
    """Follow /jobs/<id>/stream until the server closes it."""
    with urllib.request.urlopen(
        server.base_url + f"/jobs/{job_id}/stream", timeout=120
    ) as resp:
        assert resp.headers.get("Content-Type") == "application/x-ndjson"
        return [json.loads(line) for line in resp]


def wait_terminal(server, job_id: str) -> dict:
    """Block on the stream (it follows until terminal), then fetch."""
    tail_stream(server, job_id)
    _, _, body = request(server, "GET", f"/jobs/{job_id}")
    return body


class TestLifecycle:
    def test_healthz(self, server):
        assert request(server, "GET", "/healthz") == (
            200, "application/json", {"ok": True}
        )

    def test_submit_stream_and_fingerprint_matches_direct_run(self, server):
        status, _, body = request(
            server, "POST", "/jobs",
            {"experiment": "monte-carlo", "grid": "smoke", "tenant": "alice"},
        )
        assert status == 201
        job = body["job"]
        assert job["state"] in ("submitted", "queued")

        records = tail_stream(server, job["id"])
        direct = run_campaign("monte-carlo", grid="smoke", root_seed=0, workers=1)
        assert sorted(r["index"] for r in records) == list(
            range(len(direct.records))
        )

        _, _, doc = request(server, "GET", f"/jobs/{job['id']}")
        assert doc["job"]["state"] == "done"
        # The service adds nothing to the campaign: same fingerprint as
        # running it directly.
        assert doc["job"]["fingerprint"] == direct.fingerprint
        assert doc["totals"]["samples"] == len(direct.records)
        assert doc["status_counts"]["ok"] == len(direct.records)
        assert doc["progress"]["streamed"] == len(direct.records)

    def test_job_listing_and_tenant_filter(self, server):
        _, _, body = request(
            server, "POST", "/jobs",
            {"experiment": "synthetic", "grid": "smoke", "tenant": "bob"},
        )
        bob_id = body["job"]["id"]
        wait_terminal(server, bob_id)
        _, _, everyone = request(server, "GET", "/jobs")
        assert bob_id in {j["id"] for j in everyone["jobs"]}
        _, _, only_bob = request(server, "GET", "/jobs?tenant=bob")
        assert {j["tenant"] for j in only_bob["jobs"]} == {"bob"}
        assert bob_id in {j["id"] for j in only_bob["jobs"]}

    def test_cancel_then_resume_over_http(self, server):
        _, _, body = request(
            server, "POST", "/jobs",
            {"experiment": "synthetic", "grid": SLEEPY_GRID},
        )
        job_id = body["job"]["id"]
        # Wait for some progress, then cancel.
        for _ in range(600):
            _, _, doc = request(server, "GET", f"/jobs/{job_id}")
            if doc["progress"]["streamed"] >= 2:
                break
            time.sleep(0.1)
        assert doc["progress"]["streamed"] >= 2, "job never made progress"
        status, _, body = request(server, "DELETE", f"/jobs/{job_id}")
        assert status == 202
        doc = wait_terminal(server, job_id)
        assert doc["job"]["state"] == "cancelled"
        assert 0 < doc["job"]["completed"] < len(SLEEPY_GRID)

        status, _, _ = request(server, "POST", f"/jobs/{job_id}/resume")
        assert status == 202
        doc = wait_terminal(server, job_id)
        assert doc["job"]["state"] == "done"
        assert doc["totals"]["cached"] >= doc["totals"]["samples"] - (
            len(SLEEPY_GRID) - 2
        )
        direct = run_campaign(
            "synthetic", grid=SLEEPY_GRID, root_seed=0, workers=1
        )
        assert doc["job"]["fingerprint"] == direct.fingerprint


class TestValidationAndErrors:
    def test_bad_submit_returns_structured_field_errors(self, server):
        status, _, body = request(
            server, "POST", "/jobs",
            {"experiment": "nope", "grid": "x", "bogus": 1},
        )
        assert status == 400
        fields = {e["field"] for e in body["errors"]}
        assert {"experiment", "bogus"} <= fields

    def test_invalid_json_body(self, server):
        req = urllib.request.Request(
            server.base_url + "/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=30)
        assert exc_info.value.code == 400
        errors = json.loads(exc_info.value.read())["errors"]
        assert "invalid JSON" in errors[0]["message"]

    def test_unknown_job_and_route_are_404(self, server):
        assert request(server, "GET", "/jobs/job-missing")[0] == 404
        assert request(server, "DELETE", "/jobs/job-missing")[0] == 404
        assert request(server, "GET", "/nope")[0] == 404

    def test_method_not_allowed(self, server):
        assert request(server, "PUT", "/jobs", {})[0] == 405


class TestCatalogAndMetrics:
    def test_experiments_catalog(self, server):
        status, _, body = request(server, "GET", "/experiments")
        assert status == 200
        catalog = {e["name"]: e for e in body["experiments"]}
        assert "monte-carlo" in catalog
        assert "smoke" in catalog["synthetic"]["presets"]
        assert all(e["describe"] for e in body["experiments"])

    def test_metrics_valid_while_job_runs(self, server):
        _, _, body = request(
            server, "POST", "/jobs",
            {"experiment": "synthetic", "grid": SLEEPY_GRID, "root_seed": 9},
        )
        job_id = body["job"]["id"]
        status, ctype, text = request(server, "GET", "/metrics")
        assert status == 200
        assert ctype == PROM_CONTENT_TYPE
        # Well-formed exposition: every non-comment line is `name{...} value`.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part, line
            float(value)  # must parse
        assert "# TYPE service_jobs_submitted_total counter" in text
        assert "# HELP service_jobs_submitted_total" in text
        assert 'service_jobs_submitted_total{' in text
        assert "service_http_requests_total{" in text
        wait_terminal(server, job_id)
        _, _, text = request(server, "GET", "/metrics")
        assert 'service_jobs_finished_total{state="done"}' in text
