"""Unit tests for the Bayesian-network engine and the SAR risk model."""

import pytest

from repro.sinadra.bayesnet import BayesianNetwork, DiscreteNode
from repro.sinadra.risk import (
    Criticality,
    SarRiskModel,
    SituationInputs,
    build_sar_risk_network,
)


def sprinkler_network():
    """The classic rain/sprinkler/grass network with known posteriors."""
    net = BayesianNetwork()
    net.add_node(DiscreteNode("rain", ["no", "yes"], cpt={(): [0.8, 0.2]}))
    net.add_node(
        DiscreteNode(
            "sprinkler",
            ["off", "on"],
            parents=["rain"],
            cpt={("no",): [0.6, 0.4], ("yes",): [0.99, 0.01]},
        )
    )
    net.add_node(
        DiscreteNode(
            "grass_wet",
            ["no", "yes"],
            parents=["sprinkler", "rain"],
            cpt={
                ("off", "no"): [1.0, 0.0],
                ("off", "yes"): [0.2, 0.8],
                ("on", "no"): [0.1, 0.9],
                ("on", "yes"): [0.01, 0.99],
            },
        )
    )
    net.validate()
    return net


class TestBayesianNetwork:
    def test_prior_marginal(self):
        net = sprinkler_network()
        assert net.query("rain")["yes"] == pytest.approx(0.2)

    def test_known_posterior_rain_given_wet(self):
        # Standard textbook result: P(rain | grass wet) ~ 0.3577.
        net = sprinkler_network()
        posterior = net.query("rain", {"grass_wet": "yes"})
        assert posterior["yes"] == pytest.approx(0.3577, abs=0.001)

    def test_known_posterior_sprinkler_given_wet(self):
        # P(sprinkler | grass wet) ~ 0.6467.
        net = sprinkler_network()
        posterior = net.query("sprinkler", {"grass_wet": "yes"})
        assert posterior["on"] == pytest.approx(0.6467, abs=0.001)

    def test_posterior_sums_to_one(self):
        net = sprinkler_network()
        posterior = net.query("grass_wet", {"rain": "yes"})
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_evidence_on_target_is_consistent(self):
        net = sprinkler_network()
        posterior = net.query("rain", {"rain": "yes"})
        assert posterior["yes"] == pytest.approx(1.0)

    def test_explaining_away(self):
        # Learning the sprinkler was on reduces belief in rain.
        net = sprinkler_network()
        p_rain_wet = net.query("rain", {"grass_wet": "yes"})["yes"]
        p_rain_wet_sprinkler = net.query(
            "rain", {"grass_wet": "yes", "sprinkler": "on"}
        )["yes"]
        assert p_rain_wet_sprinkler < p_rain_wet

    def test_rejects_unknown_parent(self):
        net = BayesianNetwork()
        with pytest.raises(ValueError):
            net.add_node(DiscreteNode("a", ["x"], parents=["missing"], cpt={}))

    def test_rejects_duplicate_node(self):
        net = BayesianNetwork()
        net.add_node(DiscreteNode("a", ["x"], cpt={(): [1.0]}))
        with pytest.raises(ValueError):
            net.add_node(DiscreteNode("a", ["x"], cpt={(): [1.0]}))

    def test_validate_catches_missing_row(self):
        net = BayesianNetwork()
        net.add_node(DiscreteNode("a", ["x", "y"], cpt={(): [0.5, 0.5]}))
        net.add_node(
            DiscreteNode("b", ["u"], parents=["a"], cpt={("x",): [1.0]})
        )
        with pytest.raises(ValueError):
            net.validate()

    def test_validate_catches_non_distribution(self):
        net = BayesianNetwork()
        net.add_node(DiscreteNode("a", ["x", "y"], cpt={(): [0.7, 0.7]}))
        with pytest.raises(ValueError):
            net.validate()

    def test_rejects_unknown_evidence(self):
        net = sprinkler_network()
        with pytest.raises(ValueError):
            net.query("rain", {"nope": "yes"})
        with pytest.raises(ValueError):
            net.query("rain", {"grass_wet": "soaked"})

    def test_rejects_unknown_target(self):
        net = sprinkler_network()
        with pytest.raises(ValueError):
            net.query("nope")


class TestSituationInputs:
    def test_validates_ranges(self):
        with pytest.raises(ValueError):
            SituationInputs(1.5, "low", "good", 0.5)
        with pytest.raises(ValueError):
            SituationInputs(0.5, "middle", "good", 0.5)
        with pytest.raises(ValueError):
            SituationInputs(0.5, "low", "foggy", 0.5)
        with pytest.raises(ValueError):
            SituationInputs(0.5, "low", "good", -0.1)


class TestSarRiskModel:
    def test_network_validates(self):
        build_sar_risk_network().validate()

    def test_low_uncertainty_low_altitude_is_low_risk(self):
        model = SarRiskModel()
        result = model.assess(SituationInputs(0.2, "low", "good", 0.1))
        assert result.criticality is Criticality.LOW
        assert not result.rescan_recommended

    def test_high_uncertainty_high_altitude_triggers_rescan(self):
        model = SarRiskModel()
        result = model.assess(SituationInputs(0.95, "high", "good", 0.3))
        assert result.criticality is Criticality.HIGH
        assert result.rescan_recommended

    def test_risk_monotone_in_uncertainty(self):
        model = SarRiskModel()
        risks = [
            model.assess(SituationInputs(u, "high", "good", 0.3)).missed_person_probability
            for u in (0.2, 0.7, 0.95)
        ]
        assert risks[0] < risks[1] < risks[2]

    def test_risk_monotone_in_occupancy_prior(self):
        model = SarRiskModel()
        low = model.assess(SituationInputs(0.95, "high", "good", 0.05))
        high = model.assess(SituationInputs(0.95, "high", "good", 0.9))
        assert high.missed_person_probability > low.missed_person_probability

    def test_empty_cell_has_zero_missed_person_risk(self):
        model = SarRiskModel()
        result = model.assess(SituationInputs(0.95, "high", "poor", 0.0))
        assert result.missed_person_probability == pytest.approx(0.0)
        assert result.criticality is Criticality.LOW

    def test_poor_visibility_raises_risk(self):
        model = SarRiskModel()
        good = model.assess(SituationInputs(0.7, "high", "good", 0.3))
        poor = model.assess(SituationInputs(0.7, "high", "poor", 0.3))
        assert poor.missed_person_probability > good.missed_person_probability

    def test_descending_lowers_risk(self):
        model = SarRiskModel()
        high = model.assess(SituationInputs(0.7, "high", "good", 0.3))
        low = model.assess(SituationInputs(0.7, "low", "good", 0.3))
        assert low.missed_person_probability < high.missed_person_probability
