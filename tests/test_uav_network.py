"""Unit tests for the Fig. 1 per-UAV ConSert network and mission decider."""

import pytest

from repro.core.decider import MissionDecider, MissionVerdict
from repro.core.uav_network import UavConSertNetwork, UavGuarantee


@pytest.fixture
def net():
    network = UavConSertNetwork(uav_id="uav1")
    # All-healthy defaults.
    network.set_reliability_level("high")
    return network


class TestUavNetwork:
    def test_healthy_uav_offers_extra_capacity(self, net):
        assert net.evaluate() is UavGuarantee.CONTINUE_MISSION_EXTRA
        assert net.navigation_guarantee() == "high_performance_navigation"

    def test_attack_revokes_gps_navigation(self, net):
        net.set_attack_detected(True)
        assert net.navigation_guarantee() == "collaborative_navigation"

    def test_attack_plus_no_neighbors_falls_to_assistant_or_vision(self, net):
        net.set_attack_detected(True)
        net.set_nearby_uavs_available(False)
        assert net.navigation_guarantee() in ("assistant_navigation", "vision_navigation")

    def test_total_navigation_loss_defaults_to_emergency(self, net):
        net.set_attack_detected(True)
        net.set_nearby_uavs_available(False)
        net.set_camera_healthy(False)
        assert net.navigation_guarantee() == "navigation_unavailable"
        assert net.evaluate() is UavGuarantee.EMERGENCY_LAND

    def test_medium_reliability_continues_without_extra(self, net):
        net.set_reliability_level("medium")
        assert net.evaluate() is UavGuarantee.CONTINUE_MISSION

    def test_low_reliability_returns_to_base(self, net):
        net.set_reliability_level("low")
        assert net.evaluate() is UavGuarantee.RETURN_TO_BASE

    def test_low_reliability_no_nav_emergency_lands(self, net):
        net.set_reliability_level("low")
        net.set_gps_quality_ok(False)
        net.set_nearby_uavs_available(False)
        net.set_camera_healthy(False)
        assert net.evaluate() is UavGuarantee.EMERGENCY_LAND

    def test_degraded_navigation_downgrades_mission_capacity(self, net):
        # GPS lost, CL unavailable, vision still fine -> can continue but
        # not take extra tasks (vision is not precise navigation).
        net.set_gps_quality_ok(False)
        net.set_nearby_uavs_available(False)
        assert net.evaluate() is UavGuarantee.CONTINUE_MISSION

    def test_safeml_low_confidence_disables_vision_localization(self, net):
        net.set_gps_quality_ok(False)
        net.set_comm_links_ok(False)
        net.set_drone_detection_ok(False)
        net.set_safeml_confidence_ok(False)
        assert net.navigation_guarantee() == "navigation_unavailable"

    def test_camera_failure_disables_vision_and_assistant(self, net):
        net.set_gps_quality_ok(False)
        net.set_comm_links_ok(False)
        net.set_camera_healthy(False)
        assert net.navigation_guarantee() == "navigation_unavailable"

    def test_invalid_reliability_level_rejected(self, net):
        with pytest.raises(ValueError):
            net.set_reliability_level("excellent")

    def test_hold_position_band(self, net):
        # Medium reliability, no navigation but camera alive -> hold.
        net.set_reliability_level("medium")
        net.set_gps_quality_ok(False)
        net.set_nearby_uavs_available(False)
        net.set_safeml_confidence_ok(False)
        net.set_drone_detection_ok(False)
        assert net.evaluate() is UavGuarantee.HOLD_POSITION


def fleet(n=3):
    decider = MissionDecider()
    networks = []
    for i in range(n):
        network = UavConSertNetwork(uav_id=f"uav{i + 1}")
        network.set_reliability_level("high")
        decider.add_uav(network)
        networks.append(network)
    return decider, networks


class TestMissionDecider:
    def test_all_healthy_as_planned(self):
        decider, _ = fleet()
        decision = decider.decide()
        assert decision.verdict is MissionVerdict.AS_PLANNED
        assert decision.dropped_uavs == []

    def test_one_dropout_with_spare_capacity_redistributes(self):
        decider, networks = fleet()
        networks[0].set_reliability_level("low")
        decision = decider.decide()
        assert decision.verdict is MissionVerdict.REDISTRIBUTE
        assert decision.dropped_uavs == ["uav1"]
        assert set(decision.takeover_uavs) == {"uav2", "uav3"}

    def test_redistribution_plan_assigns_dropped_to_takeover(self):
        decider, networks = fleet()
        networks[0].set_reliability_level("low")
        decider.decide()
        plan = decider.redistribution_plan()
        assert set(plan) == {"uav1"}
        assert plan["uav1"] in ("uav2", "uav3")

    def test_no_spare_capacity_cannot_complete(self):
        decider, networks = fleet()
        networks[0].set_reliability_level("low")
        for network in networks[1:]:
            network.set_reliability_level("medium")  # capable but no spare
        decision = decider.decide()
        assert decision.verdict is MissionVerdict.CANNOT_COMPLETE

    def test_all_dropped_cannot_complete(self):
        decider, networks = fleet()
        for network in networks:
            network.set_reliability_level("low")
        assert decider.decide().verdict is MissionVerdict.CANNOT_COMPLETE

    def test_more_dropped_than_takeover(self):
        decider, networks = fleet(3)
        networks[0].set_reliability_level("low")
        networks[1].set_reliability_level("low")
        decision = decider.decide()
        # Two dropped, one takeover-capable -> cannot complete fully.
        assert decision.verdict is MissionVerdict.CANNOT_COMPLETE

    def test_empty_decider_raises(self):
        with pytest.raises(RuntimeError):
            MissionDecider().decide()

    def test_plan_requires_redistribute_verdict(self):
        decider, _ = fleet()
        decider.decide()
        with pytest.raises(RuntimeError):
            decider.redistribution_plan()

    def test_plan_requires_prior_decision(self):
        decider, _ = fleet()
        with pytest.raises(RuntimeError):
            decider.redistribution_plan()

    def test_history_accumulates(self):
        decider, networks = fleet()
        decider.decide()
        networks[0].set_reliability_level("low")
        decider.decide()
        assert len(decider.history) == 2
        assert decider.history[0].verdict is MissionVerdict.AS_PLANNED
        assert decider.history[1].verdict is MissionVerdict.REDISTRIBUTE
