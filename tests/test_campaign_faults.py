"""Campaign fault tolerance: checkpoint, quarantine, retry, resume.

The harness-level guarantees behind large Monte-Carlo campaigns: one
broken grid point must never cost the completed ones. Uses the
registered ``chaos`` experiment, whose injected faults (crash / hang /
flake / hard worker exit) are driven by on-disk state so the cache key —
and therefore the fingerprint — of a grid point is identical before and
after the "fix".
"""

from __future__ import annotations

import pytest

import repro.harness.chaos  # noqa: F401  (registers "chaos")
from repro import obs
from repro.harness.cache import ResultCache
from repro.harness.campaign import (
    CampaignAborted,
    FaultPolicy,
    run_campaign,
)


def clean_grid(n: int = 6) -> list[dict]:
    return [{"i": i, "n": 128, "loc": float(i)} for i in range(n)]


def grid_with_fault(tmp_path, fault: dict, at: int = 2, n: int = 6):
    """A clean grid with one faulted point, armed via a marker file."""
    armed = tmp_path / "armed"
    armed.write_text("armed")
    grid = clean_grid(n)
    grid[at] = {**grid[at], "fault": {**fault, "armed_file": str(armed)}}
    return grid, armed


class TestQuarantine:
    def test_crashing_sample_does_not_kill_siblings(self, tmp_path):
        grid, _ = grid_with_fault(tmp_path, {"mode": "crash"})
        result = run_campaign(
            "chaos", grid=grid, root_seed=7, workers=4,
            cache_dir=tmp_path / "cache",
        )
        assert [r.index for r in result.records] == list(range(6))
        failed = result.records[2]
        assert failed.status == "failed"
        assert failed.result is None
        assert failed.attempts == 1
        assert failed.error["kind"] == "exception"
        assert failed.error["type"] == "RuntimeError"
        assert "injected crash" in failed.error["message"]
        assert all(
            r.status == "ok" and r.result is not None
            for r in result.records if r.index != 2
        )
        assert result.manifest["totals"]["failed"] == 1
        # Every record — including the quarantined one — was checkpointed.
        assert ResultCache(tmp_path / "cache").count("chaos") == 6

    def test_serial_and_parallel_failure_handling_agree(self, tmp_path):
        grid, _ = grid_with_fault(tmp_path, {"mode": "crash"})
        serial = run_campaign("chaos", grid=grid, root_seed=7, workers=1)
        parallel = run_campaign("chaos", grid=grid, root_seed=7, workers=4)

        def view(result):
            return [
                (r.index, r.seed, r.status, r.result, r.attempts,
                 (r.error or {}).get("kind"), (r.error or {}).get("type"),
                 (r.error or {}).get("message"))
                for r in result.records
            ]

        assert view(serial) == view(parallel)
        assert serial.fingerprint == parallel.fingerprint
        assert serial.manifest["totals"]["failed"] == 1

    def test_worker_hard_crash_detected(self, tmp_path):
        # os._exit in a worker: the child dies without reporting. The
        # scheduler must notice, quarantine it as a crash, and keep going.
        grid, _ = grid_with_fault(tmp_path, {"mode": "hard-crash"})
        result = run_campaign("chaos", grid=grid, root_seed=7, workers=2)
        failed = result.records[2]
        assert failed.status == "failed"
        assert failed.error["kind"] == "crash"
        assert "41" in failed.error["message"]
        assert sum(1 for r in result.records if r.status == "ok") == 5

    def test_timeout_quarantines_hung_sample(self, tmp_path):
        grid, _ = grid_with_fault(tmp_path, {"mode": "hang", "hang_s": 60.0})
        policy = FaultPolicy(timeout_s=0.5)
        result = run_campaign(
            "chaos", grid=grid, root_seed=7, workers=2, policy=policy
        )
        failed = result.records[2]
        assert failed.status == "failed"
        assert failed.error["kind"] == "timeout"
        assert result.manifest["totals"]["failed"] == 1
        assert sum(1 for r in result.records if r.status == "ok") == 5

    def test_timeout_policy_is_supervised_even_serially(self, tmp_path):
        # workers=1 with a timeout still terminates the hung sample
        # (the policy forces supervised child processes).
        grid, _ = grid_with_fault(tmp_path, {"mode": "hang", "hang_s": 60.0})
        result = run_campaign(
            "chaos", grid=grid, root_seed=7, workers=1,
            policy=FaultPolicy(timeout_s=0.5),
        )
        assert result.records[2].error["kind"] == "timeout"
        assert result.manifest["totals"]["failed"] == 1


class TestRetries:
    def test_flaky_sample_retries_to_success(self, tmp_path):
        grid = clean_grid(4)
        grid[1] = {
            **grid[1],
            "fault": {"mode": "flaky", "fails": 2, "dir": str(tmp_path / "m")},
        }
        policy = FaultPolicy(max_attempts=3, backoff_s=0.0)
        result = run_campaign(
            "chaos", grid=grid, root_seed=3, workers=2, policy=policy
        )
        assert result.manifest["totals"]["failed"] == 0
        assert result.records[1].status == "ok"
        assert result.records[1].attempts == 3
        assert all(r.attempts == 1 for r in result.records if r.index != 1)
        # Retries re-ran with the original seed: the flaked-then-passed
        # campaign fingerprints identically to a clean re-run.
        rerun = run_campaign("chaos", grid=grid, root_seed=3, workers=2)
        assert rerun.manifest["totals"]["failed"] == 0
        assert rerun.fingerprint == result.fingerprint
        assert rerun.results == result.results

    def test_insufficient_retries_still_quarantine(self, tmp_path):
        grid = clean_grid(3)
        grid[0] = {
            **grid[0],
            "fault": {"mode": "flaky", "fails": 5, "dir": str(tmp_path / "m")},
        }
        result = run_campaign(
            "chaos", grid=grid, root_seed=3,
            policy=FaultPolicy(max_attempts=2),
        )
        assert result.records[0].status == "failed"
        assert result.records[0].attempts == 2

    def test_retries_and_failures_hit_obs_counters(self, tmp_path):
        grid = clean_grid(3)
        grid[0] = {
            **grid[0],
            "fault": {"mode": "flaky", "fails": 1, "dir": str(tmp_path / "m")},
        }
        grid[2] = {**grid[2], "fault": {"mode": "crash"}}
        with obs.isolated(enabled=True) as session:
            run_campaign(
                "chaos", grid=grid, root_seed=3,
                policy=FaultPolicy(max_attempts=2),
            )
            snapshot = session.collect()
        counters = snapshot["metrics"]["counters"]
        retry_series = counters["campaign_retries_total"]
        assert sum(retry_series.values()) >= 1.0
        failure_series = counters["campaign_failures_total"]
        assert sum(failure_series.values()) == 1.0
        names = [e["name"] for e in snapshot["events"]]
        assert "sample_retry" in names and "sample_failed" in names

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            FaultPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_s=-1.0)


class TestCheckpointAndResume:
    def test_interrupt_keeps_completed_samples_cached(self, tmp_path):
        # A KeyboardInterrupt mid-execute (serial) aborts the campaign,
        # but everything that finished before it is already on disk.
        grid, _ = grid_with_fault(tmp_path, {"mode": "interrupt"}, at=3)
        cache_dir = tmp_path / "cache"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                "chaos", grid=grid, root_seed=5, workers=1, cache_dir=cache_dir
            )
        assert ResultCache(cache_dir).count("chaos") == 3

    def test_rerun_after_interrupt_hits_cache_for_completed(self, tmp_path):
        grid, armed = grid_with_fault(tmp_path, {"mode": "interrupt"}, at=3)
        cache_dir = tmp_path / "cache"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                "chaos", grid=grid, root_seed=5, workers=1, cache_dir=cache_dir
            )
        armed.unlink()  # "fix" the experiment
        result = run_campaign(
            "chaos", grid=grid, root_seed=5, workers=1, cache_dir=cache_dir
        )
        assert result.manifest["totals"]["cached"] == 3
        assert result.manifest["totals"]["failed"] == 0

    def test_resume_completes_grid_and_matches_clean_fingerprint(self, tmp_path):
        grid, armed = grid_with_fault(tmp_path, {"mode": "crash"})
        cache_dir = tmp_path / "cache"
        broken = run_campaign(
            "chaos", grid=grid, root_seed=9, workers=4, cache_dir=cache_dir
        )
        assert broken.manifest["totals"]["failed"] == 1

        # A plain re-run reuses the quarantined record without re-running.
        replay = run_campaign(
            "chaos", grid=grid, root_seed=9, workers=4, cache_dir=cache_dir
        )
        assert replay.manifest["totals"]["cached"] == 6
        assert replay.records[2].status == "failed"
        assert replay.records[2].cached
        assert replay.fingerprint == broken.fingerprint

        # --resume after the fix re-runs exactly the failed point...
        armed.unlink()
        resumed = run_campaign(
            "chaos", grid=grid, root_seed=9, workers=4, cache_dir=cache_dir,
            resume=True,
        )
        assert resumed.manifest["totals"]["cached"] == 5
        assert resumed.manifest["totals"]["failed"] == 0
        assert all(r.status == "ok" for r in resumed.records)

        # ...and the result is indistinguishable from a never-failed run.
        clean = run_campaign(
            "chaos", grid=grid, root_seed=9, workers=4,
            cache_dir=tmp_path / "clean-cache",
        )
        assert clean.manifest["totals"]["failed"] == 0
        assert resumed.fingerprint == clean.fingerprint
        assert resumed.results == clean.results

    def test_resume_without_cache_runs_everything(self):
        result = run_campaign("chaos", grid=clean_grid(3), root_seed=1,
                              resume=True)
        assert result.manifest["totals"]["cached"] == 0
        assert result.manifest["totals"]["failed"] == 0


class TestMaxFailures:
    def test_abort_early_when_grid_is_broken(self, tmp_path):
        armed = tmp_path / "armed"
        armed.write_text("armed")
        grid = clean_grid(6)
        for i in (2, 3, 4, 5):
            grid[i] = {
                **grid[i],
                "fault": {"mode": "crash", "armed_file": str(armed)},
            }
        cache_dir = tmp_path / "cache"
        with pytest.raises(CampaignAborted) as excinfo:
            run_campaign(
                "chaos", grid=grid, root_seed=2, workers=1,
                cache_dir=cache_dir, policy=FaultPolicy(max_failures=1),
            )
        assert excinfo.value.failures == 2
        # Work finished before the abort is checkpointed (samples 0, 1
        # plus the two quarantined failures), so --resume can finish.
        assert ResultCache(cache_dir).count("chaos") == 4
        armed.unlink()
        resumed = run_campaign(
            "chaos", grid=grid, root_seed=2, workers=1,
            cache_dir=cache_dir, resume=True,
        )
        assert resumed.manifest["totals"]["failed"] == 0
        assert resumed.manifest["totals"]["cached"] == 2

    def test_abort_parallel(self, tmp_path):
        armed = tmp_path / "armed"
        armed.write_text("armed")
        grid = [
            {"i": i, "n": 64, "fault": {"mode": "crash",
                                        "armed_file": str(armed)}}
            for i in range(6)
        ]
        with pytest.raises(CampaignAborted):
            run_campaign(
                "chaos", grid=grid, root_seed=2, workers=3,
                policy=FaultPolicy(max_failures=0),
            )
