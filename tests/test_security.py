"""Unit tests for attack trees, broker, IDS, Security EDDI, spoof detector."""

import numpy as np
import pytest

from repro.middleware.rosbus import RosBus
from repro.security.attack_trees import (
    AttackNode,
    AttackTree,
    GateType,
    ros_spoofing_attack_tree,
)
from repro.security.broker import MqttBroker, topic_matches
from repro.security.eddi import SecurityEddi
from repro.security.ids import Alert, IdsRule, IntrusionDetectionSystem
from repro.security.spoofing import GpsSpoofingDetector


class TestAttackTree:
    def test_leaf_cannot_have_children(self):
        with pytest.raises(ValueError):
            AttackNode("x", "t", GateType.LEAF, children=[AttackNode("y", "t")])

    def test_gate_needs_children(self):
        with pytest.raises(ValueError):
            AttackNode("x", "t", GateType.AND)

    def test_or_gate_any_child(self):
        tree = ros_spoofing_attack_tree()
        tree.mark_achieved("network_intrusion")
        gain = next(n for n in tree.root.iter_nodes() if n.node_id == "gain_access")
        assert gain.evaluate()

    def test_and_gate_needs_all(self):
        tree = ros_spoofing_attack_tree()
        tree.mark_achieved("network_intrusion")
        assert not tree.root_achieved()
        tree.mark_achieved("inject_messages")
        assert tree.root_achieved()

    def test_mark_unknown_leaf_raises(self):
        tree = ros_spoofing_attack_tree()
        with pytest.raises(KeyError):
            tree.mark_achieved("nope")

    def test_mark_non_leaf_raises(self):
        tree = ros_spoofing_attack_tree()
        with pytest.raises(ValueError):
            tree.mark_achieved("gain_access")

    def test_reset(self):
        tree = ros_spoofing_attack_tree()
        tree.mark_achieved("network_intrusion")
        tree.mark_achieved("inject_messages")
        tree.reset()
        assert not tree.root_achieved()
        assert tree.progress() == 0.0

    def test_progress(self):
        tree = ros_spoofing_attack_tree()
        assert tree.progress() == 0.0
        tree.mark_achieved("inject_messages")
        assert tree.progress() == pytest.approx(1 / 3)

    def test_attack_path_traces_to_root(self):
        tree = ros_spoofing_attack_tree()
        tree.mark_achieved("network_intrusion")
        tree.mark_achieved("inject_messages")
        path = tree.attack_path()
        assert "manipulate_mapping" in path
        assert "gain_access" in path
        assert "network_intrusion" in path

    def test_leaf_by_alert_type(self):
        tree = ros_spoofing_attack_tree()
        leaves = tree.leaf_by_alert_type("message_injection")
        assert [n.node_id for n in leaves] == ["inject_messages"]

    def test_json_roundtrip(self):
        tree = ros_spoofing_attack_tree()
        restored = AttackTree.from_json(tree.to_json())
        assert restored.name == tree.name
        assert [n.node_id for n in restored.root.iter_nodes()] == [
            n.node_id for n in tree.root.iter_nodes()
        ]
        restored.mark_achieved("network_intrusion")
        restored.mark_achieved("inject_messages")
        assert restored.root_achieved()

    def test_json_preserves_capec_metadata(self):
        tree = ros_spoofing_attack_tree()
        restored = AttackTree.from_json(tree.to_json())
        assert restored.root.capec_id == "CAPEC-594"
        assert restored.root.severity == "high"


class TestTopicMatching:
    @pytest.mark.parametrize(
        "pattern,topic,expected",
        [
            ("a/b", "a/b", True),
            ("a/b", "a/c", False),
            ("a/+", "a/b", True),
            ("a/+", "a/b/c", False),
            ("a/#", "a/b/c", True),
            ("#", "anything/at/all", True),
            ("a/+/c", "a/b/c", True),
            ("a/+/c", "a/b/d", False),
            ("a/b", "a", False),
            ("a", "a/b", False),
        ],
    )
    def test_matching(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected


class TestBroker:
    def test_publish_and_subscribe(self):
        broker = MqttBroker()
        got = []
        broker.subscribe("ids/alerts/#", lambda t, p: got.append((t, p)))
        n = broker.publish("ids/alerts/spoof", {"x": 1})
        assert n == 1
        assert got == [("ids/alerts/spoof", {"x": 1})]

    def test_wildcard_publish_rejected(self):
        broker = MqttBroker()
        with pytest.raises(ValueError):
            broker.publish("ids/#", None)

    def test_retained_replay_on_subscribe(self):
        broker = MqttBroker()
        broker.publish("status", "armed", retain=True)
        got = []
        broker.subscribe("status", lambda t, p: got.append(p))
        assert got == ["armed"]

    def test_unsubscribe(self):
        broker = MqttBroker()
        got = []
        sub = broker.subscribe("t", lambda t, p: got.append(p))
        broker.unsubscribe(sub)
        broker.publish("t", 1)
        assert got == []


def make_ids():
    bus = RosBus()
    broker = MqttBroker()
    ids = IntrusionDetectionSystem(bus=bus, broker=broker)
    for node in ("uav1", "uav2", "gcs"):
        ids.register_node(node)
    return bus, broker, ids


class TestIds:
    def test_honest_traffic_no_alerts(self):
        bus, _, ids = make_ids()
        bus.publish("/uav1/pose", 1, sender="uav1")
        assert ids.scan(0.0) == []

    def test_forged_message_raises_injection_alert(self):
        bus, _, ids = make_ids()
        bus.publish("/uav1/pose", 1, sender="uav1", origin="adversary")
        alerts = ids.scan(0.0)
        types = {a.alert_type for a in alerts}
        assert "message_injection" in types
        assert "unauthorized_publisher" in types

    def test_known_node_forging_another(self):
        # A compromised fleet node spoofing a peer: injection but not
        # unauthorized (the origin is registered).
        bus, _, ids = make_ids()
        bus.publish("/uav1/pose", 1, sender="uav1", origin="uav2")
        types = {a.alert_type for a in ids.scan(0.0)}
        assert types == {"message_injection"}

    def test_alerts_published_to_broker(self):
        bus, broker, ids = make_ids()
        got = []
        broker.subscribe("ids/alerts/#", lambda t, p: got.append(p))
        bus.publish("/uav1/pose", 1, sender="uav1", origin="adversary")
        ids.scan(0.0)
        assert got
        assert all(isinstance(a, Alert) for a in got)

    def test_scan_cursor_does_not_reprocess(self):
        bus, _, ids = make_ids()
        bus.publish("/uav1/pose", 1, sender="uav1", origin="adversary")
        first = ids.scan(0.0)
        second = ids.scan(1.0)
        assert first and not second

    def test_rate_anomaly(self):
        bus, _, ids = make_ids()
        ids.set_rate_limit("/uav1/pose", max_hz=2.0)
        for i in range(20):
            bus.advance_clock(i * 0.05)
            bus.publish("/uav1/pose", i, sender="uav1")
        alerts = ids.scan(1.0)
        assert any(a.alert_type == "rate_anomaly" for a in alerts)

    def test_rate_within_limit_no_alert(self):
        bus, _, ids = make_ids()
        ids.set_rate_limit("/uav1/pose", max_hz=5.0)
        for i in range(4):
            bus.advance_clock(float(i))
            bus.publish("/uav1/pose", i, sender="uav1")
        assert ids.scan(4.0) == []

    def test_flood_during_warmup_is_detected(self):
        # Regression: a flood inside the first seconds of a stream used
        # to be averaged over the full rate window (2 s) before the
        # window had spanned that long, underestimating the rate — a
        # 20 Hz burst read as 4 Hz and sailed under a 10 Hz limit.
        bus, _, ids = make_ids()
        ids.set_rate_limit("/uav1/pose", max_hz=10.0)
        for i in range(8):
            bus.advance_clock(i * 0.05)  # 8 messages in 0.35 s
            bus.publish("/uav1/pose", i, sender="uav1")
        alerts = ids.scan(0.4)
        assert any(a.alert_type == "rate_anomaly" for a in alerts)

    def test_warmup_normalization_has_floor_and_no_false_positive(self):
        # Sparse early traffic must not trip the limit: two messages
        # 50 ms apart normalized by the floored span stay under 5 Hz.
        bus, _, ids = make_ids()
        ids.set_rate_limit("/uav1/pose", max_hz=5.0)
        for i in range(2):
            bus.advance_clock(i * 0.05)
            bus.publish("/uav1/pose", i, sender="uav1")
        assert ids.scan(0.1) == []

    def test_custom_rule(self):
        bus, _, ids = make_ids()
        ids.custom_rules.append(
            IdsRule(
                name="no_huge_payload",
                check=lambda m: "payload_anomaly" if m.data == "huge" else None,
            )
        )
        bus.publish("/uav1/pose", "huge", sender="uav1")
        alerts = ids.scan(0.0)
        assert any(a.alert_type == "payload_anomaly" for a in alerts)


class TestSecurityEddi:
    def test_full_pipeline_detects_root_goal(self):
        bus, broker, ids = make_ids()
        eddi = SecurityEddi(tree=ros_spoofing_attack_tree(), broker=broker)
        fired = []
        eddi.add_response(fired.append)
        bus.advance_clock(12.0)
        bus.publish("/uav1/pose", "fake", sender="uav1", origin="adversary")
        ids.scan(12.0)
        assert eddi.root_achieved
        assert len(eddi.events) == 1
        assert fired and fired[0].stamp == 12.0
        assert "manipulate_mapping" in fired[0].attack_path

    def test_partial_attack_no_event(self):
        bus, broker, ids = make_ids()
        eddi = SecurityEddi(tree=ros_spoofing_attack_tree(), broker=broker)
        # Compromised-node forgery: injection alert only -> AND unsatisfied?
        # inject_messages leaf achieved, but gain_access needs intrusion or
        # node_anomaly, neither of which fires for a registered origin...
        bus.publish("/uav1/pose", "fake", sender="uav1", origin="uav2")
        ids.scan(0.0)
        assert not eddi.root_achieved
        assert eddi.events == []

    def test_event_fires_once(self):
        bus, broker, ids = make_ids()
        eddi = SecurityEddi(tree=ros_spoofing_attack_tree(), broker=broker)
        for i in range(5):
            bus.publish("/uav1/pose", i, sender="uav1", origin="adversary")
        ids.scan(0.0)
        assert len(eddi.events) == 1

    def test_reset_allows_new_detection(self):
        bus, broker, ids = make_ids()
        eddi = SecurityEddi(tree=ros_spoofing_attack_tree(), broker=broker)
        bus.publish("/uav1/pose", 1, sender="uav1", origin="adversary")
        ids.scan(0.0)
        eddi.reset()
        assert not eddi.root_achieved
        bus.publish("/uav1/pose", 2, sender="uav1", origin="adversary")
        ids.scan(1.0)
        assert len(eddi.events) == 1

    def test_event_carries_mitigation(self):
        bus, broker, ids = make_ids()
        eddi = SecurityEddi(tree=ros_spoofing_attack_tree(), broker=broker)
        bus.publish("/uav1/pose", 1, sender="uav1", origin="adversary")
        ids.scan(0.0)
        assert "ollaborative" in eddi.events[0].mitigation  # CL named as mitigation


class TestGpsSpoofingDetector:
    def run_epochs(self, detector, epochs, offset_fn, rng, dt=0.5):
        """Simulate straight flight with GPS offset injection."""
        truth = np.zeros(3)
        velocity = np.array([2.0, 0.0, 0.0])
        verdict = None
        for k in range(epochs):
            now = k * dt
            truth = truth + velocity * dt
            gps = truth + offset_fn(now) + rng.normal(0.0, 0.3, 3)
            imu = velocity + rng.normal(0.0, 0.05, 3)
            verdict = detector.update(now, tuple(gps), tuple(imu), dt)
        return verdict

    def test_clean_flight_no_alarm(self):
        detector = GpsSpoofingDetector()
        rng = np.random.default_rng(0)
        verdict = self.run_epochs(detector, 400, lambda t: np.zeros(3), rng)
        assert not verdict.spoofed

    def test_abrupt_jump_detected(self):
        detector = GpsSpoofingDetector()
        rng = np.random.default_rng(1)
        verdict = self.run_epochs(
            detector, 100,
            lambda t: np.array([25.0, 0.0, 0.0]) if t > 20.0 else np.zeros(3),
            rng,
        )
        assert verdict.spoofed
        assert detector.detection_time > 20.0
        assert detector.detection_time < 25.0

    def test_slow_ramp_detected(self):
        detector = GpsSpoofingDetector()
        rng = np.random.default_rng(2)
        verdict = self.run_epochs(
            detector, 200,
            lambda t: np.array([max(0.0, 0.8 * (t - 20.0)), 0.0, 0.0]),
            rng,
        )
        assert verdict.spoofed
        assert detector.detection_time < 40.0  # within ~20 s of ramp onset

    def test_single_glitch_rejected(self):
        detector = GpsSpoofingDetector(hits_to_alarm=3)
        rng = np.random.default_rng(3)
        verdict = self.run_epochs(
            detector, 100,
            lambda t: np.array([30.0, 0.0, 0.0]) if abs(t - 20.0) < 0.3 else np.zeros(3),
            rng,
        )
        assert not verdict.spoofed

    def test_reset_clears_state(self):
        detector = GpsSpoofingDetector()
        rng = np.random.default_rng(4)
        self.run_epochs(
            detector, 100, lambda t: np.array([50.0, 0.0, 0.0]) if t > 5 else np.zeros(3), rng
        )
        assert detector.spoof_detected
        detector.reset()
        assert not detector.spoof_detected
        assert detector.history == []
