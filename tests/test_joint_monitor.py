"""Unit tests for the joint-distribution (multivariate) SafeML monitor."""

import numpy as np
import pytest

from repro.safeml.joint import JointShiftMonitor


def correlated_sample(rng, n, rho=0.0):
    """Bivariate normal with correlation rho and standard marginals."""
    z1 = rng.normal(0.0, 1.0, n)
    z2 = rho * z1 + np.sqrt(1.0 - rho * rho) * rng.normal(0.0, 1.0, n)
    return np.column_stack([z1, z2])


def fitted_monitor(measure="energy", rho=0.0, seed=0, window=40):
    rng = np.random.default_rng(seed)
    monitor = JointShiftMonitor(
        measure=measure, window_size=window, rng=np.random.default_rng(seed + 1)
    )
    monitor.fit(correlated_sample(rng, 400, rho))
    return monitor, rng


class TestJointShiftMonitor:
    def test_rejects_unknown_measure(self):
        with pytest.raises(ValueError):
            JointShiftMonitor(measure="hamming")

    def test_requires_fit(self):
        monitor = JointShiftMonitor()
        with pytest.raises(RuntimeError):
            monitor.observe(np.zeros(2))

    def test_requires_observations(self):
        monitor, _ = fitted_monitor()
        with pytest.raises(RuntimeError):
            monitor.report()

    def test_rejects_small_reference(self):
        monitor = JointShiftMonitor(window_size=100)
        with pytest.raises(ValueError):
            monitor.fit(np.zeros((50, 2)))

    def test_rejects_wrong_dims(self):
        monitor, _ = fitted_monitor()
        with pytest.raises(ValueError):
            monitor.observe(np.zeros(5))

    @pytest.mark.parametrize("measure", ["energy", "mmd"])
    def test_in_distribution_moderate_uncertainty(self, measure):
        monitor, rng = fitted_monitor(measure=measure)
        for row in correlated_sample(rng, 40):
            monitor.observe(row)
        report = monitor.report()
        assert report.uncertainty < 0.95

    @pytest.mark.parametrize("measure", ["energy", "mmd"])
    def test_mean_shift_detected(self, measure):
        monitor, rng = fitted_monitor(measure=measure)
        for row in correlated_sample(rng, 40) + 3.0:
            monitor.observe(row)
        report = monitor.report()
        assert report.uncertainty > 0.95

    def test_correlation_shift_detected_by_joint_monitor(self):
        # Marginals stay standard normal; only the correlation flips.
        monitor, rng = fitted_monitor(measure="mmd", rho=0.0, window=60)
        shifted = correlated_sample(rng, 60, rho=0.95)
        for row in shifted:
            monitor.observe(row)
        joint_report = monitor.report()

        # The marginal (per-feature) monitor on the same data barely moves.
        from repro.safeml.monitor import SafeMlMonitor

        marginal = SafeMlMonitor(window_size=60, rng=np.random.default_rng(5))
        marginal.fit(correlated_sample(np.random.default_rng(6), 400, rho=0.0))
        for row in shifted:
            marginal.observe(row)
        marginal_report = marginal.report()
        assert joint_report.z_score > marginal_report.z_score

    def test_window_slides(self):
        monitor, rng = fitted_monitor()
        for row in correlated_sample(rng, 40) + 5.0:
            monitor.observe(row)
        shifted_u = monitor.report().uncertainty
        for row in correlated_sample(rng, 40):
            monitor.observe(row)
        recovered_u = monitor.report().uncertainty
        assert recovered_u < shifted_u
