"""Reproduction tests: each paper experiment's shape must hold.

These assert the *qualitative* results the paper reports (who wins, by
roughly what factor, where thresholds fall) rather than exact testbed
numbers — see EXPERIMENTS.md for the measured-vs-paper comparison.
"""

import pytest

from repro.core.uav_network import UavGuarantee
from repro.core.decider import MissionVerdict
from repro.experiments import (
    run_conserts_scenario_matrix,
    run_fig5_battery_experiment,
    run_fig6_spoofing_experiment,
    run_fig7_collaborative_landing,
    run_sar_accuracy_experiment,
)
from repro.experiments.conserts_network import UavCondition, evaluate_fleet
from repro.sinadra.risk import Criticality


@pytest.fixture(scope="module")
def fig5():
    return run_fig5_battery_experiment()


class TestFig5BatteryAvailability:
    def test_pof_negligible_before_fault(self, fig5):
        trace = fig5.with_sesame
        idx = max(i for i, t in enumerate(trace.times) if t < 250.0)
        assert trace.pof[idx] < 0.05

    def test_pof_rises_after_fault(self, fig5):
        trace = fig5.with_sesame
        idx_400 = min(range(len(trace.times)), key=lambda i: abs(trace.times[i] - 400))
        assert trace.pof[idx_400] > 0.3

    def test_soc_collapse_at_fault_time(self, fig5):
        trace = fig5.with_sesame
        before = min(range(len(trace.times)), key=lambda i: abs(trace.times[i] - 249))
        after = min(range(len(trace.times)), key=lambda i: abs(trace.times[i] - 252))
        assert trace.soc[before] == pytest.approx(0.80, abs=0.02)
        assert trace.soc[after] == pytest.approx(0.40, abs=0.02)

    def test_threshold_crossing_near_510s(self, fig5):
        crossing = fig5.with_sesame.threshold_crossing_time
        assert crossing is not None
        assert 460.0 <= crossing <= 580.0

    def test_with_sesame_completes_mission_in_one_pass(self, fig5):
        assert fig5.with_sesame.mission_complete_time is not None
        assert fig5.with_sesame.mission_complete_time == pytest.approx(510.0, abs=30.0)
        assert fig5.with_sesame.abort_time is None  # never aborted mid-mission

    def test_without_sesame_aborts_at_fault(self, fig5):
        assert fig5.without_sesame.abort_time == pytest.approx(250.0, abs=5.0)

    def test_without_sesame_completes_later(self, fig5):
        w = fig5.with_sesame.mission_complete_time
        wo = fig5.without_sesame.mission_complete_time
        assert wo is not None and wo > w + 60.0

    def test_availability_shape_matches_paper(self, fig5):
        # Paper: ~91% with SESAME vs ~80% without.
        assert 0.85 <= fig5.availability_with <= 0.95
        assert 0.72 <= fig5.availability_without <= 0.85
        assert fig5.availability_improvement >= 0.05

    def test_completion_improvement_positive(self, fig5):
        # Paper reports an 11% improvement in mission completion time.
        assert 0.04 <= fig5.completion_improvement <= 0.25

    def test_pof_curve_monotone_after_fault(self, fig5):
        trace = fig5.with_sesame
        post = [p for t, p in zip(trace.times, trace.pof) if t >= 250.0]
        assert all(b >= a - 1e-12 for a, b in zip(post, post[1:]))

    def test_summary_rows_structure(self, fig5):
        rows = fig5.summary_rows()
        assert [r[0] for r in rows] == [
            "availability",
            "time_until_available_s",
            "mission_complete_s",
        ]


@pytest.fixture(scope="module")
def sar():
    return run_sar_accuracy_experiment()


class TestSarAccuracy:
    def test_high_altitude_uncertainty_exceeds_90(self, sar):
        assert sar.uncertainty_high > 0.90

    def test_descent_converges_to_75(self, sar):
        # Paper: "the SAR uncertainty decreases to approximately 75%".
        assert 0.60 <= sar.uncertainty_final <= 0.90

    def test_final_accuracy_matches_998(self, sar):
        assert sar.accuracy_with_sesame == pytest.approx(0.998, abs=0.004)

    def test_without_sesame_accuracy_lower(self, sar):
        assert sar.accuracy_without_sesame < sar.accuracy_with_sesame

    def test_descent_stops_above_training_altitude(self, sar):
        assert sar.final_altitude_m >= 20.0
        assert sar.final_altitude_m < 40.0

    def test_uncertainty_profile_monotone_decreasing(self, sar):
        series = [s.ensemble_uncertainty for s in sar.descent_profile]
        assert all(b <= a + 0.05 for a, b in zip(series, series[1:]))

    def test_sinadra_criticality_high_at_start(self, sar):
        assert sar.descent_profile[0].criticality is Criticality.HIGH

    def test_classifier_degrades_at_altitude(self, sar):
        assert sar.classifier_accuracy_high < sar.classifier_accuracy_low

    def test_dk_coverage_reasonable(self, sar):
        assert 0.2 <= sar.dk_coverage_score <= 1.0


@pytest.fixture(scope="module")
def fig6():
    return run_fig6_spoofing_experiment()


class TestFig6Spoofing:
    def test_trajectory_deviates_substantially(self, fig6):
        # The spoof ramps to 60 m; the physical deviation should approach it.
        assert fig6.max_deviation_m > 30.0

    def test_no_deviation_before_attack(self, fig6):
        pre_attack = [
            d for t, d in zip(fig6.times, fig6.deviation_m) if t < fig6.attack_start_s
        ]
        assert max(pre_attack) < 3.0

    def test_security_eddi_detects_immediately(self, fig6):
        # Paper: "spoofing attack was detected immediately by the SecurityEDDI".
        assert fig6.eddi_latency_s is not None
        assert fig6.eddi_latency_s <= 2.0

    def test_sensor_crosscheck_detects_within_seconds(self, fig6):
        assert fig6.sensor_latency_s is not None
        assert fig6.sensor_latency_s <= 20.0

    def test_attack_path_reaches_root(self, fig6):
        assert "manipulate_mapping" in fig6.attack_path

    def test_ids_raised_alerts(self, fig6):
        assert fig6.ids_alert_count > 0


@pytest.fixture(scope="module")
def fig7():
    return run_fig7_collaborative_landing()


class TestFig7CollaborativeLanding:
    def test_uav_lands(self, fig7):
        assert fig7.cl_report.landed

    def test_high_precision_landing(self, fig7):
        # Paper: safe landing "in a high precision location" without GPS.
        assert fig7.cl_report.final_error_m < 3.0

    def test_cl_beats_dead_reckoning_baseline(self, fig7):
        assert fig7.cl_report.final_error_m < fig7.baseline_error_m / 2.0

    def test_cl_estimates_are_submeter_scale(self, fig7):
        assert fig7.mean_estimate_error_m < 3.0
        assert fig7.cl_report.mean_cl_sigma_m < 0.75  # ConSert accuracy bound

    def test_continuous_sightings(self, fig7):
        assert fig7.n_sightings >= 20

    def test_landing_reasonably_fast(self, fig7):
        assert fig7.cl_report.duration_s < 200.0


class TestConsertScenarioMatrix:
    def test_matrix_covers_24_scenarios(self):
        results = run_conserts_scenario_matrix()
        assert len(results) == 24

    def test_healthy_fleet_always_as_planned(self):
        result = evaluate_fleet([UavCondition()] * 3)
        assert result.verdict is MissionVerdict.AS_PLANNED

    def test_degraded_uav_never_blocks_healthy_peers(self):
        for result in run_conserts_scenario_matrix():
            assert result.guarantees[1] is UavGuarantee.CONTINUE_MISSION_EXTRA
            assert result.guarantees[2] is UavGuarantee.CONTINUE_MISSION_EXTRA

    def test_single_failure_never_cancels_mission(self):
        # With two healthy takeover-capable UAVs, one degraded UAV can
        # always be compensated.
        for result in run_conserts_scenario_matrix():
            assert result.verdict in (
                MissionVerdict.AS_PLANNED,
                MissionVerdict.REDISTRIBUTE,
            )

    def test_low_reliability_drops_uav(self):
        result = evaluate_fleet(
            [UavCondition(reliability="low"), UavCondition(), UavCondition()]
        )
        assert result.guarantees[0] is UavGuarantee.RETURN_TO_BASE
        assert result.verdict is MissionVerdict.REDISTRIBUTE

    def test_attack_without_neighbors_degrades_navigation(self):
        result = evaluate_fleet(
            [
                UavCondition(attack=True, neighbors=False),
                UavCondition(),
                UavCondition(),
            ]
        )
        assert result.navigation[0] in ("assistant_navigation", "vision_navigation")
