"""Property-based tests (hypothesis) on core data structures and invariants."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import (
    EnuFrame,
    GeoPoint,
    destination_point,
    haversine_m,
    initial_bearing_deg,
)
from repro.safedrones.fta import AndGate, BasicEvent, KooNGate, OrGate
from repro.safedrones.markov import ContinuousMarkovChain
from repro.safeml.distances import ALL_MEASURES, kolmogorov_smirnov_distance
from repro.security.broker import topic_matches
from repro.sinadra.risk import SarRiskModel, SituationInputs

# Mid-latitude coordinates away from poles and the antimeridian, where the
# small-area approximations used by the simulation are valid.
lat_strategy = st.floats(min_value=-60.0, max_value=60.0)
lon_strategy = st.floats(min_value=-170.0, max_value=170.0)
prob_strategy = st.floats(min_value=0.0, max_value=1.0)


class TestGeoProperties:
    @given(lat=lat_strategy, lon=lon_strategy, lat2=lat_strategy, lon2=lon_strategy)
    @settings(max_examples=100)
    def test_haversine_symmetry_and_nonnegativity(self, lat, lon, lat2, lon2):
        a, b = GeoPoint(lat, lon), GeoPoint(lat2, lon2)
        d_ab = haversine_m(a, b)
        assert d_ab >= 0.0
        assert d_ab == pytest.approx(haversine_m(b, a), rel=1e-9, abs=1e-6)

    @given(
        lat=lat_strategy,
        lon=lon_strategy,
        bearing=st.floats(min_value=0.0, max_value=360.0),
        distance=st.floats(min_value=1.0, max_value=50_000.0),
    )
    @settings(max_examples=100)
    def test_destination_point_roundtrip(self, lat, lon, bearing, distance):
        origin = GeoPoint(lat, lon)
        dest = destination_point(origin, bearing, distance)
        assert haversine_m(origin, dest) == pytest.approx(distance, rel=1e-6)

    @given(
        lat=lat_strategy,
        lon=lon_strategy,
        east=st.floats(min_value=-5000.0, max_value=5000.0),
        north=st.floats(min_value=-5000.0, max_value=5000.0),
        up=st.floats(min_value=-100.0, max_value=500.0),
    )
    @settings(max_examples=100)
    def test_enu_roundtrip(self, lat, lon, east, north, up):
        frame = EnuFrame(origin=GeoPoint(lat, lon))
        e, n, u = frame.to_enu(frame.to_geo(east, north, up))
        assert e == pytest.approx(east, abs=1e-4)
        assert n == pytest.approx(north, abs=1e-4)
        assert u == pytest.approx(up, abs=1e-9)

    @given(lat=lat_strategy, lon=lon_strategy, lat2=lat_strategy, lon2=lon_strategy)
    @settings(max_examples=100)
    def test_bearing_in_range(self, lat, lon, lat2, lon2):
        bearing = initial_bearing_deg(GeoPoint(lat, lon), GeoPoint(lat2, lon2))
        assert 0.0 <= bearing < 360.0


class TestFtaProperties:
    @given(probs=st.lists(prob_strategy, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_and_le_min_or_ge_max(self, probs):
        events = [BasicEvent(f"e{i}", p) for i, p in enumerate(probs)]
        and_p = AndGate("and", list(events)).evaluate()
        or_p = OrGate("or", list(events)).evaluate()
        assert and_p <= min(probs) + 1e-12
        assert or_p >= max(probs) - 1e-12
        assert and_p <= or_p + 1e-12
        assert 0.0 <= and_p <= 1.0 and 0.0 <= or_p <= 1.0

    @given(
        probs=st.lists(prob_strategy, min_size=2, max_size=6),
        data=st.data(),
    )
    @settings(max_examples=100)
    def test_koon_monotone_in_k(self, probs, data):
        events = [BasicEvent(f"e{i}", p) for i, p in enumerate(probs)]
        k = data.draw(st.integers(min_value=1, max_value=len(probs) - 1))
        loose = KooNGate("k", k=k, children=list(events)).evaluate()
        strict = KooNGate("k", k=k + 1, children=list(events)).evaluate()
        assert strict <= loose + 1e-12

    @given(probs=st.lists(prob_strategy, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_koon_brackets_and_or(self, probs):
        events = [BasicEvent(f"e{i}", p) for i, p in enumerate(probs)]
        n = len(probs)
        or_p = OrGate("or", list(events)).evaluate()
        and_p = AndGate("and", list(events)).evaluate()
        assert KooNGate("k1", k=1, children=list(events)).evaluate() == pytest.approx(or_p)
        assert KooNGate("kn", k=n, children=list(events)).evaluate() == pytest.approx(and_p)


class TestMarkovProperties:
    @given(
        rate1=st.floats(min_value=1e-6, max_value=0.5),
        rate2=st.floats(min_value=1e-6, max_value=0.5),
        t=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_distribution_normalised_and_pof_monotone(self, rate1, rate2, t):
        chain = ContinuousMarkovChain(
            states=["a", "b", "fail"],
            q=np.array(
                [[0.0, rate1, 0.0], [0.0, 0.0, rate2], [0.0, 0.0, 0.0]]
            ),
            absorbing=frozenset({"fail"}),
        )
        p0 = np.array([1.0, 0.0, 0.0])
        pt = chain.transient(p0, t)
        assert pt.sum() == pytest.approx(1.0, abs=1e-8)
        assert (pt >= -1e-10).all()
        assert chain.failure_probability(p0, t) <= chain.failure_probability(
            p0, t + 10.0
        ) + 1e-9


@st.composite
def sample_pair(draw):
    a = draw(
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0), min_size=5, max_size=60
        )
    )
    b = draw(
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0), min_size=5, max_size=60
        )
    )
    return np.array(a), np.array(b)


class TestDistanceProperties:
    @given(pair=sample_pair())
    @settings(max_examples=60)
    def test_all_measures_nonnegative_and_symmetric(self, pair):
        a, b = pair
        for fn in ALL_MEASURES.values():
            d_ab = fn(a, b)
            assert d_ab >= -1e-12
            assert d_ab == pytest.approx(fn(b, a), rel=1e-9, abs=1e-9)

    @given(pair=sample_pair())
    @settings(max_examples=60)
    def test_identity_of_indiscernibles(self, pair):
        a, _ = pair
        for fn in ALL_MEASURES.values():
            assert fn(a, a) == pytest.approx(0.0, abs=1e-10)

    @given(pair=sample_pair())
    @settings(max_examples=60)
    def test_ks_bounded_by_one(self, pair):
        a, b = pair
        assert kolmogorov_smirnov_distance(a, b) <= 1.0 + 1e-12

    @given(
        a=st.lists(st.integers(min_value=-100, max_value=100), min_size=5, max_size=40),
        b=st.lists(st.integers(min_value=-100, max_value=100), min_size=5, max_size=40),
        shift=st.integers(min_value=-50, max_value=50),
    )
    @settings(max_examples=60)
    def test_ks_translation_invariance(self, a, b, shift):
        # Integer-valued data keeps the arithmetic exact, so the set of
        # ties is preserved under translation.
        a = np.array(a, dtype=float)
        b = np.array(b, dtype=float)
        assert kolmogorov_smirnov_distance(a, b) == pytest.approx(
            kolmogorov_smirnov_distance(a + shift, b + shift), abs=1e-9
        )


class TestBrokerProperties:
    @given(
        levels=st.lists(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
                min_size=1,
                max_size=5,
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=100)
    def test_exact_topic_matches_itself(self, levels):
        topic = "/".join(levels)
        assert topic_matches(topic, topic)
        assert topic_matches("#", topic)

    @given(
        levels=st.lists(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll",)),
                min_size=1,
                max_size=5,
            ),
            min_size=2,
            max_size=5,
        ),
        idx=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=100)
    def test_plus_wildcard_matches_any_single_level(self, levels, idx):
        idx = idx % len(levels)
        topic = "/".join(levels)
        pattern_levels = list(levels)
        pattern_levels[idx] = "+"
        assert topic_matches("/".join(pattern_levels), topic)


class TestRiskProperties:
    @given(
        u1=prob_strategy,
        u2=prob_strategy,
        prior=prob_strategy,
    )
    @settings(max_examples=60)
    def test_risk_monotone_in_uncertainty(self, u1, u2, prior):
        model = SarRiskModel()
        lo, hi = sorted((u1, u2))
        r_lo = model.assess(
            SituationInputs(lo, "high", "good", prior)
        ).missed_person_probability
        r_hi = model.assess(
            SituationInputs(hi, "high", "good", prior)
        ).missed_person_probability
        assert r_hi >= r_lo - 1e-12

    @given(u=prob_strategy, prior=prob_strategy)
    @settings(max_examples=60)
    def test_risk_bounded_by_prior(self, u, prior):
        model = SarRiskModel()
        risk = model.assess(
            SituationInputs(u, "high", "poor", prior)
        ).missed_person_probability
        assert 0.0 <= risk <= prior + 1e-12
