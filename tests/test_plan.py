"""The obstacle-aware planning subsystem (:mod:`repro.plan`).

Four layers of guarantees:

1. Grid semantics — primitive rasterisation, the closed-boundary
   convention, conservative inflation, and the pure-NumPy nearest-obstacle
   index agreeing with brute force.
2. Planner properties — every A* path is collision-free on BOTH the
   inflated grid it searched and the raw grid (the oracle's view),
   straight-line legs pass through untouched, disconnected space raises.
3. Routing properties — tours visit every assigned point, 2-opt never
   lengthens a tour, fleet partitions occupy disjoint east-bands (the
   inter-UAV separation property).
4. Integration — the scenario loader routes missions, SarMission routes
   coverage tracks and altitude re-plans, the ``planned_path_clearance``
   oracle catches a plan that cuts through a building, and detection
   gating agrees with the configured camera.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.harness.oracles import (
    PlannedPathClearanceOracle,
    run_scenario_oracles,
)
from repro.plan import (
    ObstacleField,
    ObstacleIndex,
    OccupancyGrid3D,
    PlanError,
    inspection_points,
    nearest_neighbor_tour,
    partition_points,
    plan_inspection_tours,
    plan_path,
    route_waypoints,
    shortcut_path,
    tour_length,
    two_opt,
)
from repro.sar.coverage import CameraConfig, swath_width_m
from repro.sar.mission import SarMission
from repro.scenario import ScenarioError, lint_scenario, load_scenario
from repro.uav.world import Person

SCENARIOS = Path(__file__).resolve().parents[1] / "scenarios"


def _wall_field(inflation_m: float = 2.0) -> ObstacleField:
    """A 100 m world split by a wall with clearance over the top."""
    return ObstacleField.build(
        size_m=(100.0, 100.0, 40.0),
        cell_m=2.0,
        boxes=[((40.0, 0.0, 0.0), (60.0, 100.0, 25.0))],
        cylinders=[],
        inflation_m=inflation_m,
    )


class TestOccupancyGrid:
    def test_empty_grid_shape_and_freeness(self):
        grid = OccupancyGrid3D.empty((40.0, 20.0, 10.0), 4.0)
        assert grid.shape == (10, 5, 3)
        assert not grid.occupied.any()
        assert grid.is_free((1.0, 1.0, 1.0))

    def test_box_occupies_cell_centres_inside(self):
        grid = OccupancyGrid3D.empty((40.0, 40.0, 20.0), 4.0)
        grid.add_box((8.0, 8.0, 0.0), (16.0, 16.0, 8.0))
        assert not grid.is_free((10.0, 10.0, 2.0))
        assert grid.is_free((30.0, 30.0, 2.0))
        assert grid.is_free((10.0, 10.0, 18.0))  # above the box

    def test_cylinder_occupies_radius(self):
        grid = OccupancyGrid3D.empty((40.0, 40.0, 20.0), 2.0)
        grid.add_cylinder((20.0, 20.0), 6.0, 10.0)
        assert not grid.is_free((20.0, 20.0, 5.0))
        assert grid.is_free((20.0, 35.0, 5.0))
        assert grid.is_free((20.0, 20.0, 15.0))  # above the mast

    def test_degenerate_box_raises(self):
        grid = OccupancyGrid3D.empty((40.0, 40.0, 20.0), 4.0)
        with pytest.raises(PlanError):
            grid.add_box((10.0, 10.0, 0.0), (10.0, 20.0, 8.0))

    def test_upper_boundary_belongs_to_last_cell(self):
        # A waypoint at exactly the area edge must see the obstacle that
        # fills the boundary cell — not fall outside into "free".
        grid = OccupancyGrid3D.empty((40.0, 40.0, 20.0), 4.0)
        grid.add_box((0.0, 36.0, 0.0), (40.0, 40.0, 20.0))
        assert not grid.is_free((20.0, 40.0, 10.0))
        assert grid.is_free((20.0, 41.0, 10.0))  # genuinely outside

    def test_outside_points_are_free(self):
        grid = OccupancyGrid3D.empty((40.0, 40.0, 20.0), 4.0)
        grid.occupied[:] = True
        assert grid.is_free((20.0, 20.0, 50.0))
        assert grid.is_free((-5.0, 20.0, 10.0))

    def test_segment_free_detects_wall(self):
        field = _wall_field()
        assert not field.grid.segment_free((10.0, 50.0, 10.0), (90.0, 50.0, 10.0))
        assert field.grid.segment_free((10.0, 50.0, 35.0), (90.0, 50.0, 35.0))

    def test_inflation_smaller_than_cell_still_dilates(self):
        # Regression: a naive radius/cell dilation rounds 3 m / 4 m cells
        # down to zero offsets and silently skips inflation entirely.
        grid = OccupancyGrid3D.empty((40.0, 40.0, 20.0), 4.0)
        grid.add_box((16.0, 16.0, 0.0), (24.0, 24.0, 8.0))
        inflated = grid.inflate(3.0)
        assert inflated.occupied.sum() > grid.occupied.sum()

    def test_inflation_preserves_raw_and_is_monotone(self):
        field = _wall_field(inflation_m=3.0)
        assert (
            field.inflated.occupied.sum() > field.grid.occupied.sum()
        )
        # Everything raw-occupied stays occupied after inflation.
        assert (field.inflated.occupied | ~field.grid.occupied).all()

    def test_nearest_free_snaps_interior_point(self):
        field = _wall_field()
        snapped = field.grid.nearest_free((50.0, 50.0, 10.0))
        assert field.grid.is_free(snapped)
        free_point = (10.0, 10.0, 10.0)
        assert field.grid.nearest_free(free_point) == free_point

    def test_fully_occupied_grid_raises(self):
        grid = OccupancyGrid3D.empty((8.0, 8.0, 8.0), 4.0)
        grid.occupied[:] = True
        with pytest.raises(PlanError):
            grid.nearest_free((4.0, 4.0, 4.0))


class TestObstacleIndex:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(7)
        cloud = rng.uniform(0.0, 100.0, size=(200, 3))
        queries = rng.uniform(-20.0, 120.0, size=(50, 3))
        index = ObstacleIndex(cloud, bin_m=16.0)
        got = index.nearest_distance(queries)
        want = np.array(
            [np.linalg.norm(cloud - q, axis=1).min() for q in queries]
        )
        assert np.allclose(got, want)

    def test_empty_cloud_is_infinitely_clear(self):
        index = ObstacleIndex(np.empty((0, 3)), bin_m=8.0)
        assert np.isinf(index.nearest_distance(np.zeros((3, 3)))).all()

    def test_grid_clearance_query(self):
        field = _wall_field()
        clear = field.grid.clearance_m(np.asarray([[10.0, 50.0, 10.0]]))
        # Wall starts at east 40; nearest occupied cell centre is at 41.
        assert 29.0 <= float(clear[0]) <= 33.0


class TestPlanner:
    def test_straight_leg_untouched(self):
        field = _wall_field()
        path = plan_path(field.inflated, (10.0, 10.0, 35.0), (90.0, 10.0, 35.0))
        assert path == [(10.0, 10.0, 35.0), (90.0, 10.0, 35.0)]

    def test_blocked_leg_routes_collision_free(self):
        field = _wall_field()
        start, goal = (10.0, 50.0, 10.0), (90.0, 50.0, 10.0)
        path = plan_path(field.inflated, start, goal)
        assert path[0] == start and path[-1] == goal
        assert len(path) > 2
        assert field.inflated.path_free(path)
        assert field.grid.path_free(path)

    def test_shortcut_never_longer(self):
        field = _wall_field()
        start, goal = (10.0, 50.0, 10.0), (90.0, 50.0, 10.0)
        path = plan_path(field.inflated, start, goal)
        # The smoothed path must beat the rectilinear detour bound.
        direct = math.dist(start, goal)
        assert direct < tour_length(path) < 2.5 * direct

    def test_shortcut_path_keeps_endpoints(self):
        field = _wall_field()
        points = [(10.0, 10.0, 35.0), (30.0, 10.0, 35.0), (90.0, 10.0, 35.0)]
        out = shortcut_path(field.inflated, points)
        assert out[0] == points[0] and out[-1] == points[-1]
        assert len(out) <= len(points)

    def test_endpoint_inside_obstacle_snaps(self):
        field = _wall_field()
        path = plan_path(field.inflated, (10.0, 50.0, 10.0), (50.0, 50.0, 10.0))
        assert field.inflated.is_free(path[-1])
        assert field.grid.path_free(path)

    def test_disconnected_space_raises(self):
        sealed = ObstacleField.build(
            size_m=(60.0, 60.0, 20.0),
            cell_m=2.0,
            boxes=[((28.0, 0.0, 0.0), (32.0, 60.0, 20.0))],
            cylinders=[],
            inflation_m=0.0,
        )
        with pytest.raises(PlanError):
            plan_path(sealed.inflated, (5.0, 30.0, 10.0), (55.0, 30.0, 10.0))

    def test_route_waypoints_multi_leg(self):
        field = _wall_field()
        start = (5.0, 5.0, 10.0)
        routed = route_waypoints(
            field, start, [(90.0, 50.0, 10.0), (10.0, 90.0, 10.0)]
        )
        assert field.grid.path_free([start] + routed)
        # Both original goals survive as flown waypoints.
        assert (90.0, 50.0, 10.0) in routed
        assert (10.0, 90.0, 10.0) in routed

    def test_boundary_waypoint_does_not_crash(self):
        field = _wall_field()
        routed = route_waypoints(
            field, (5.0, 5.0, 10.0), [(50.0, 100.0, 10.0)]
        )
        assert field.grid.path_free([(5.0, 5.0, 10.0)] + routed)


class TestRouting:
    def _points(self, n: int = 40, seed: int = 3) -> list:
        rng = np.random.default_rng(seed)
        return [
            (float(e), float(nn), 20.0)
            for e, nn in rng.uniform(0.0, 200.0, size=(n, 2))
        ]

    def test_nearest_neighbor_visits_everything_once(self):
        points = self._points()
        order = nearest_neighbor_tour((0.0, 0.0, 20.0), points)
        assert sorted(order) == list(range(len(points)))

    def test_two_opt_never_longer(self):
        points = self._points()
        start = (0.0, 0.0, 20.0)
        order = nearest_neighbor_tour(start, points)
        improved = two_opt(start, points, order)
        assert sorted(improved) == sorted(order)
        before = tour_length([start] + [points[i] for i in order])
        after = tour_length([start] + [points[i] for i in improved])
        assert after <= before + 1e-9

    def test_partition_separation_property(self):
        points = self._points(n=50)
        for n_parts in (2, 3, 4):
            parts = partition_points(points, n_parts)
            assert sorted(i for part in parts for i in part) == list(
                range(len(points))
            )
            assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1
            for left, right in zip(parts, parts[1:]):
                if left and right:
                    assert max(points[i][0] for i in left) <= min(
                        points[i][0] for i in right
                    )

    def test_inspection_points_respect_bounds_and_obstacles(self):
        field = _wall_field(inflation_m=3.0)
        points = inspection_points(100.0, 15.0, 10.0, field)
        assert points
        for east, north, up in points:
            assert 10.0 <= east <= 90.0
            assert 10.0 <= north <= 90.0
            assert up == 10.0
        free = field.inflated.points_free(np.asarray(points))
        assert free.all()

    def test_plan_inspection_tours_clear_and_separated(self):
        field = _wall_field(inflation_m=3.0)
        points = inspection_points(100.0, 15.0, 10.0, field)
        starts = [(5.0, 5.0, 10.0), (95.0, 5.0, 10.0)]
        tours = plan_inspection_tours(starts, points, field)
        assert len(tours) == 2
        visited = set()
        for start, tour in zip(starts, tours):
            assert field.grid.path_free([start] + tour)
            visited.update(tour)
        # Every inspection point is flown by exactly one UAV.
        assert visited >= set(points)


URBAN = {
    "seed": 5,
    "area_size_m": [200.0, 200.0],
    "obstacles": {
        "cell_m": 4.0,
        "inflation_m": 3.0,
        "boxes": [{"min": [80.0, 0.0, 0.0], "max": [110.0, 200.0, 30.0]}],
        "cylinders": [{"center": [150.0, 100.0], "radius": 10.0, "height": 25.0}],
    },
    "camera": {"half_fov_deg": 30.0, "overlap": 0.2},
    "uavs": [
        {"id": "uav1", "base": [10.0, 10.0, 0.0],
         "mission": [[40.0, 100.0, 12.0], [170.0, 100.0, 12.0]]},
    ],
}


class TestScenarioIntegration:
    def test_loader_routes_mission_around_wall(self):
        scenario = load_scenario(json.loads(json.dumps(URBAN)))
        world = scenario.world
        uav = world.uavs["uav1"]
        flown = [tuple(uav.dynamics.position)] + [
            tuple(wp) for wp in uav.plan.waypoints
        ]
        assert len(uav.plan.waypoints) > 2  # the wall forced a detour
        assert world.obstacles.grid.path_free(flown)
        assert world.camera == CameraConfig(half_fov_deg=30.0, overlap=0.2)

    def test_urban_archive_loads_and_lints(self):
        config = json.loads((SCENARIOS / "urban_sar.json").read_text())
        assert lint_scenario(config) == []
        world = load_scenario(config).world
        for uav in world.uavs.values():
            flown = [tuple(uav.dynamics.position)] + [
                tuple(wp) for wp in uav.plan.waypoints
            ]
            assert world.obstacles.grid.path_free(flown)

    @pytest.mark.parametrize(
        "patch, message",
        [
            ({"cell_m": 0.0}, "cell_m"),
            ({"inflation_m": -1.0}, "inflation_m"),
            ({"boxes": [{"min": [0, 0, 0], "max": [0, 10, 10]}]}, "boxes"),
            ({"cylinders": [{"center": [10, 10], "radius": -1, "height": 5}]},
             "cylinders"),
            ({"ceiling_m": -5.0}, "ceiling_m"),
        ],
    )
    def test_malformed_obstacles_rejected(self, patch, message):
        config = json.loads(json.dumps(URBAN))
        config["obstacles"] = {**config["obstacles"], **patch}
        with pytest.raises(ScenarioError, match=message):
            load_scenario(config)

    def test_malformed_camera_rejected(self):
        config = json.loads(json.dumps(URBAN))
        config["camera"] = {"half_fov_deg": 95.0}
        with pytest.raises(ScenarioError, match="half_fov_deg"):
            load_scenario(config)

    def test_lint_flags_unknown_obstacle_keys(self):
        config = json.loads(json.dumps(URBAN))
        config["obstacles"]["boxs"] = []
        config["camera"]["fov"] = 1.0
        problems = lint_scenario(config)
        assert any("obstacles.boxs" in p for p in problems)
        assert any("camera.fov" in p for p in problems)

    def test_unroutable_mission_is_a_scenario_error(self):
        config = json.loads(json.dumps(URBAN))
        # Wall to the explicit ceiling: no route over the top any more.
        config["obstacles"]["ceiling_m"] = 30.0
        with pytest.raises(ScenarioError, match="mission"):
            load_scenario(config)

    def test_assign_paths_routes_and_scan_uses_camera(self):
        scenario = load_scenario(json.loads(json.dumps(URBAN)))
        world = scenario.world
        mission = SarMission(world=world, altitude_m=18.0)
        assert mission.camera == world.camera
        plans = mission.assign_paths()
        for uav_id, plan in plans.items():
            base = tuple(world.uavs[uav_id].spec.base_position)
            assert world.obstacles.grid.path_free(
                [base] + [tuple(wp) for wp in plan]
            )

    def test_set_fleet_altitude_reroutes(self):
        scenario = load_scenario(json.loads(json.dumps(URBAN)))
        world = scenario.world
        mission = SarMission(world=world, altitude_m=35.0)
        mission.assign_paths()
        # Descending to 12 m puts the remaining track below the rooftops.
        mission.set_fleet_altitude(12.0)
        for uav in world.uavs.values():
            flown = [tuple(uav.dynamics.position)] + [
                tuple(wp) for wp in uav.plan.waypoints
            ]
            assert world.obstacles.grid.path_free(flown)


class TestClearanceOracle:
    def test_catches_plan_through_building(self):
        scenario = load_scenario(json.loads(json.dumps(URBAN)))
        world = scenario.world
        oracle = PlannedPathClearanceOracle()
        oracle.observe(world, 0.0)
        assert not oracle.violations  # the loader routed the mission
        # A raw replace that cuts straight through the wall must fire.
        world.uavs["uav1"].plan.replace(
            [(40.0, 100.0, 12.0), (170.0, 100.0, 12.0)]
        )
        oracle.observe(world, 1.0)
        assert oracle.violations
        assert oracle.violations[0].oracle == "planned_path_clearance"

    def test_rechecks_only_on_plan_change(self):
        scenario = load_scenario(json.loads(json.dumps(URBAN)))
        world = scenario.world
        oracle = PlannedPathClearanceOracle()
        oracle.observe(world, 0.0)
        world.uavs["uav1"].plan.replace([(40.0, 100.0, 12.0), (170.0, 100.0, 12.0)])
        oracle.observe(world, 1.0)
        oracle.observe(world, 2.0)  # same list object: not re-reported
        assert len(oracle.violations) == 1

    def test_obstacle_free_world_checks_nothing(self):
        scenario = load_scenario(
            {"seed": 1, "uavs": [{"id": "a", "mission": [[10.0, 10.0, 10.0]]}]}
        )
        oracle = PlannedPathClearanceOracle()
        oracle.observe(scenario.world, 0.0)
        assert not oracle.violations

    def test_full_suite_passes_on_urban_archive(self):
        config = json.loads((SCENARIOS / "urban_sar.json").read_text())
        report = run_scenario_oracles(config, horizon_s=8.0)
        assert "planned_path_clearance" in report.checked
        assert report.passed, [v.to_dict() for v in report.violations]


class TestCameraAgreement:
    """Detection gating and coverage planning share the camera (the
    ``mission.py:132`` regression: gating used default optics no matter
    what the plan was built with)."""

    ALTITUDE = 20.0

    def _mission(self):
        scenario = load_scenario(
            {
                "seed": 0,
                "area_size_m": [400.0, 300.0],
                "camera": {"half_fov_deg": 20.0, "overlap": 0.3},
                "uavs": [{"id": "uav1", "base": [0.0, 0.0, 0.0]}],
            }
        )
        return SarMission(world=scenario.world, altitude_m=self.ALTITUDE)

    def test_gating_uses_configured_swath(self):
        mission = self._mission()
        world = mission.world
        uav = world.uavs["uav1"]
        uav.dynamics.position = (100.0, 100.0, self.ALTITUDE)
        configured_half = mission.camera.swath_width_m(self.ALTITUDE) / 2.0
        default_half = swath_width_m(self.ALTITUDE) / 2.0
        assert configured_half < default_half
        # A person between the two half-swaths: the default camera would
        # attempt a detection, the configured one must not.
        between = (configured_half + default_half) / 2.0
        world.persons.append(Person("p-out", (100.0 + between, 100.0)))
        mission._scan(uav, 1.0)
        assert mission.metrics.attempts == []
        # Inside the configured swath the attempt fires.
        world.persons.append(
            Person("p-in", (100.0 + 0.9 * configured_half, 100.0))
        )
        mission._scan(uav, 10.0)
        assert len(mission.metrics.attempts) == 1

    def test_plan_spacing_matches_configured_swath(self):
        mission = self._mission()
        plans = mission.assign_paths()
        spacing = mission.camera.swath_width_m(mission.altitude_m)
        (path,) = plans.values()
        easts = sorted({round(wp[0], 9) for wp in path})
        assert len(easts) > 1
        gaps = [b - a for a, b in zip(easts, easts[1:])]
        assert all(gap <= spacing + 1e-9 for gap in gaps)
        # The default camera would have cut the track count roughly in
        # half; pin that the configured spacing actually took effect.
        assert len(easts) == math.ceil(400.0 / spacing)
