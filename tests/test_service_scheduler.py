"""Scheduler lifecycle: priority, cancel/resume, shutdown, tenant isolation.

Drives :class:`repro.service.scheduler.CampaignScheduler` directly (no
HTTP) through the guarantees the campaign service is stated over:

- a cancelled job stops at a sample boundary and *resumes* from its
  checkpoints, finishing with the fingerprint of an uninterrupted run;
- graceful shutdown rewinds running jobs to ``queued`` and a fresh
  scheduler (the "restarted server") picks them up via ``recover()``;
- tenants never share cache shards — identical grids re-run per tenant
  but still agree on the fingerprint, because sharding is invisible to
  the manifest.
"""

from __future__ import annotations

import asyncio
import json

import repro.experiments.campaigns  # noqa: F401  (registers experiments)
from repro.harness.campaign import run_campaign
from repro.service.scheduler import CampaignScheduler

#: Slow enough that cancellation lands mid-grid, fast enough for CI.
SLEEPY_GRID = [{"n": 64, "loc": float(i % 3), "sleep_s": 0.15} for i in range(12)]
QUICK_GRID = [{"n": 64, "loc": float(i)} for i in range(4)]


def make_scheduler(tmp_path, **kwargs) -> CampaignScheduler:
    kwargs.setdefault("max_jobs", 1)
    return CampaignScheduler(tmp_path / "jobs", tmp_path / "cache", **kwargs)


def drive(scheduler, until, timeout_s: float = 60.0) -> None:
    """Tick the scheduler on a private event loop until ``until()``."""

    async def loop():
        deadline = asyncio.get_event_loop().time() + timeout_s
        while not until():
            assert asyncio.get_event_loop().time() < deadline, "drive() timed out"
            scheduler.tick()
            await asyncio.sleep(0.02)

    asyncio.run(loop())


def wait_terminal(scheduler, job_id: str, timeout_s: float = 60.0):
    drive(
        scheduler,
        lambda: scheduler.store.load(job_id).terminal,
        timeout_s=timeout_s,
    )
    return scheduler.store.load(job_id)


def stream_indices(scheduler, job_id: str) -> list[int]:
    path = scheduler.store.stream_path(job_id)
    if not path.exists():
        return []
    return [
        json.loads(line)["index"]
        for line in path.read_text(encoding="utf-8").splitlines()
    ]


def direct_fingerprint(grid, root_seed: int = 0) -> str:
    return run_campaign(
        "synthetic", grid=grid, root_seed=root_seed, workers=1
    ).fingerprint


class TestSubmitAndRun:
    def test_smoke_job_runs_to_done(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        job, errors = scheduler.submit(
            {"experiment": "synthetic", "grid": QUICK_GRID}
        )
        assert errors == []
        job = wait_terminal(scheduler, job.id)
        assert job.state == "done"
        assert job.totals["samples"] == len(QUICK_GRID)
        assert job.totals["failed"] == 0
        assert job.fingerprint == direct_fingerprint(QUICK_GRID)
        assert stream_indices(scheduler, job.id) == list(range(len(QUICK_GRID)))
        assert scheduler.store.manifest_path(job.id).exists()

    def test_invalid_payload_rejected_without_storing(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        job, errors = scheduler.submit({"experiment": "nope"})
        assert job is None
        assert errors
        assert scheduler.store.list_jobs() == []
        counters = scheduler.metrics_snapshot()["counters"]
        assert counters["service_jobs_rejected_total"] == {"": 1}

    def test_priority_orders_execution(self, tmp_path):
        scheduler = make_scheduler(tmp_path, max_jobs=1)
        low, _ = scheduler.submit(
            {"experiment": "synthetic", "grid": QUICK_GRID, "priority": 0}
        )
        high, _ = scheduler.submit(
            {"experiment": "synthetic", "grid": QUICK_GRID, "priority": 9}
        )
        asyncio.run(scheduler.run_until_idle())
        low, high = scheduler.store.load(low.id), scheduler.store.load(high.id)
        assert low.state == high.state == "done"
        # The high-priority job, though submitted second, started first.
        assert high.started_at < low.started_at

    def test_finished_metrics_counted(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        job, _ = scheduler.submit({"experiment": "synthetic", "grid": QUICK_GRID})
        wait_terminal(scheduler, job.id)
        snapshot = scheduler.metrics_snapshot()
        assert snapshot["counters"]["service_jobs_finished_total"][
            "state=done"
        ] == 1
        histogram = snapshot["histograms"]["service_job_duration_seconds"]
        assert histogram["experiment=synthetic"]["count"] == 1


class TestCancelAndResume:
    def test_cancel_mid_run_then_resume_matches_direct_run(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        job, _ = scheduler.submit(
            {"experiment": "synthetic", "grid": SLEEPY_GRID}
        )
        # Let a few samples checkpoint, then cancel cooperatively.
        drive(scheduler, lambda: len(stream_indices(scheduler, job.id)) >= 3)
        scheduler.cancel(job.id)
        record = wait_terminal(scheduler, job.id)
        assert record.state == "cancelled"
        assert 0 < record.completed < len(SLEEPY_GRID)
        partial = record.completed

        resumed = scheduler.requeue(job.id)
        assert resumed is not None and resumed.state == "queued"
        record = wait_terminal(scheduler, job.id)
        assert record.state == "done"
        # Checkpointed samples came back as cache hits, not re-runs.
        assert record.totals["cached"] >= partial
        assert record.totals["samples"] == len(SLEEPY_GRID)
        assert record.fingerprint == direct_fingerprint(SLEEPY_GRID)
        # The resumed stream replays the full grid in order.
        assert stream_indices(scheduler, job.id) == list(range(len(SLEEPY_GRID)))

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        scheduler = make_scheduler(tmp_path, max_jobs=1)
        blocker, _ = scheduler.submit(
            {"experiment": "synthetic", "grid": SLEEPY_GRID}
        )
        queued, _ = scheduler.submit(
            {"experiment": "synthetic", "grid": QUICK_GRID}
        )
        drive(
            scheduler,
            lambda: scheduler.store.load(blocker.id).state == "running",
        )
        cancelled = scheduler.cancel(queued.id)
        assert cancelled.state == "cancelled"
        scheduler.cancel(blocker.id)
        wait_terminal(scheduler, blocker.id)
        # The cancelled-from-queue job never ran.
        assert scheduler.store.load(queued.id).started_at is None


class TestRestartResume:
    def test_shutdown_rewinds_and_fresh_scheduler_resumes(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        job, _ = scheduler.submit(
            {"experiment": "synthetic", "grid": SLEEPY_GRID}
        )
        drive(scheduler, lambda: len(stream_indices(scheduler, job.id)) >= 3)
        asyncio.run(scheduler.shutdown())
        on_disk = scheduler.store.load(job.id)
        assert on_disk.state == "queued"  # rewound, not cancelled

        # "Restarted server": a brand-new scheduler over the same roots.
        fresh = make_scheduler(tmp_path)
        requeued = fresh.recover()
        assert [j.id for j in requeued] == [job.id]
        record = wait_terminal(fresh, job.id)
        assert record.state == "done"
        assert record.totals["cached"] >= 3
        assert record.fingerprint == direct_fingerprint(SLEEPY_GRID)

    def test_killed_job_process_reports_job_crash(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        job, _ = scheduler.submit(
            {"experiment": "synthetic", "grid": SLEEPY_GRID}
        )
        drive(scheduler, lambda: job.id in scheduler._running)
        # Kill the child outright: no outcome.json gets written.
        scheduler._running[job.id].process.terminate()
        record = wait_terminal(scheduler, job.id)
        assert record.state == "failed"
        assert record.error["type"] == "JobCrash"
        # Still resumable: checkpoints survive an outcome-less death.
        scheduler.requeue(job.id)
        record = wait_terminal(scheduler, job.id)
        assert record.state == "done"
        assert record.fingerprint == direct_fingerprint(SLEEPY_GRID)


class TestTenantIsolation:
    def test_tenants_do_not_share_caches_but_agree_on_fingerprint(
        self, tmp_path
    ):
        scheduler = make_scheduler(tmp_path)
        payload = {"experiment": "synthetic", "grid": QUICK_GRID}
        alice, _ = scheduler.submit({**payload, "tenant": "alice"})
        alice = wait_terminal(scheduler, alice.id)
        assert alice.state == "done" and alice.totals["cached"] == 0

        # Bob submits the identical campaign: no cross-tenant cache hits.
        bob, _ = scheduler.submit({**payload, "tenant": "bob"})
        bob = wait_terminal(scheduler, bob.id)
        assert bob.state == "done"
        assert bob.totals["cached"] == 0
        # ... yet determinism holds across shards.
        assert bob.fingerprint == alice.fingerprint

        # Alice resubmits: her own shard satisfies every point.
        again, _ = scheduler.submit({**payload, "tenant": "alice"})
        again = wait_terminal(scheduler, again.id)
        assert again.totals["cached"] == len(QUICK_GRID)
        assert again.fingerprint == alice.fingerprint

        shards = {p.name for p in (tmp_path / "cache").iterdir()}
        assert shards == {"alice", "bob"}
