"""Unit tests for the Gilbert–Elliott channel, link monitor, and the
fault-injection framework."""

import numpy as np
import pytest

from repro.experiments.common import build_three_uav_world
from repro.safedrones.communication import (
    CommLinkMonitor,
    GilbertElliottChannel,
)
from repro.uav.faults import (
    FaultSchedule,
    battery_collapse,
    camera_degradation,
    gps_denial,
    gps_spoof,
    imu_failure,
)


def make_channel(seed=0, **kwargs):
    return GilbertElliottChannel(rng=np.random.default_rng(seed), **kwargs)


class TestGilbertElliott:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            make_channel(loss_bad=1.5)

    def test_rejects_bad_dt(self):
        channel = make_channel()
        with pytest.raises(ValueError):
            channel.step(0.0)

    def test_good_state_delivers_mostly(self):
        channel = make_channel(p_good_to_bad=0.0)
        delivered = sum(channel.deliver() for _ in range(2000))
        assert delivered / 2000 == pytest.approx(0.99, abs=0.01)

    def test_bad_state_loses_mostly(self):
        channel = make_channel(p_good_to_bad=0.0)
        channel.in_bad_state = True
        delivered = sum(channel.deliver() for _ in range(2000))
        assert delivered / 2000 == pytest.approx(0.4, abs=0.05)

    def test_stationary_bad_fraction(self):
        channel = make_channel(p_good_to_bad=0.1, p_bad_to_good=0.3)
        assert channel.stationary_bad_fraction == pytest.approx(0.25)

    def test_empirical_delivery_matches_expected(self):
        channel = make_channel(seed=3, p_good_to_bad=0.05, p_bad_to_good=0.3)
        delivered = 0
        n = 20_000
        for _ in range(n):
            channel.step(0.5)
            delivered += channel.deliver()
        assert delivered / n == pytest.approx(
            channel.expected_delivery_ratio(), abs=0.03
        )

    def test_burst_behaviour(self):
        # Losses cluster: consecutive-loss runs are longer than for an
        # independent channel with the same average loss.
        channel = make_channel(seed=5, p_good_to_bad=0.05, p_bad_to_good=0.2,
                               loss_good=0.0, loss_bad=0.9)
        outcomes = []
        for _ in range(20_000):
            channel.step(0.5)
            outcomes.append(channel.deliver())
        loss_rate = 1.0 - sum(outcomes) / len(outcomes)
        # Probability that a loss is followed by another loss.
        follow_loss = [
            not outcomes[i + 1] for i, o in enumerate(outcomes[:-1]) if not o
        ]
        assert sum(follow_loss) / len(follow_loss) > 2.0 * loss_rate

    def test_markov_chain_export(self):
        chain = make_channel(p_good_to_bad=0.1, p_bad_to_good=0.3).as_markov_chain()
        assert chain.states == ["good", "bad"]
        pt = chain.transient_from("good", 1000.0)
        assert pt[1] == pytest.approx(0.25, abs=0.01)


class TestCommLinkMonitor:
    def test_optimistic_before_traffic(self):
        monitor = CommLinkMonitor()
        assert monitor.assess(0.0).link_ok

    def test_good_traffic_stays_ok(self):
        monitor = CommLinkMonitor()
        for _ in range(100):
            monitor.record(True)
        assessment = monitor.assess(1.0)
        assert assessment.link_ok
        assert assessment.delivery_ratio == 1.0

    def test_outage_flips_link(self):
        monitor = CommLinkMonitor(window_size=20)
        for _ in range(20):
            monitor.record(True)
        for _ in range(15):
            monitor.record(False)
        assessment = monitor.assess(2.0)
        assert not assessment.link_ok
        assert assessment.estimated_bad

    def test_window_slides_and_recovers(self):
        monitor = CommLinkMonitor(window_size=20)
        for _ in range(20):
            monitor.record(False)
        assert not monitor.assess(1.0).link_ok
        for _ in range(20):
            monitor.record(True)
        assert monitor.assess(2.0).link_ok


class TestFaultInjection:
    def setup_world(self):
        scenario = build_three_uav_world(seed=9, n_persons=0)
        return scenario.world

    def test_gps_denial_and_recovery(self):
        world = self.setup_world()
        schedule = FaultSchedule()
        schedule.add(gps_denial("uav1", at_time=5.0, duration_s=10.0))
        uav = world.uavs["uav1"]
        while world.time < 4.0:
            world.step()
            schedule.step(world.time, world.uavs)
        assert not uav.sensors.gps.denied
        while world.time < 8.0:
            world.step()
            schedule.step(world.time, world.uavs)
        assert uav.sensors.gps.denied
        while world.time < 16.0:
            world.step()
            schedule.step(world.time, world.uavs)
        assert not uav.sensors.gps.denied
        assert [entry[1:] for entry in schedule.log] == [
            ("gps_denial", "applied"),
            ("gps_denial", "cleared"),
        ]

    def test_gps_spoof_applied(self):
        world = self.setup_world()
        schedule = FaultSchedule()
        schedule.add(gps_spoof("uav2", at_time=2.0, offset_m=(30.0, 0.0, 0.0)))
        while world.time < 3.0:
            world.step()
            schedule.step(world.time, world.uavs)
        assert world.uavs["uav2"].sensors.gps.spoof_offset_m == (30.0, 0.0, 0.0)

    def test_camera_degradation_progresses(self):
        world = self.setup_world()
        schedule = FaultSchedule()
        schedule.add(camera_degradation("uav1", at_time=1.0, rate_per_s=0.05))
        while world.time < 20.0:
            world.step()
            schedule.step(world.time, world.uavs)
        assert world.uavs["uav1"].sensors.camera.health < 0.5
        assert not world.uavs["uav1"].sensors.camera.operational

    def test_imu_failure(self):
        world = self.setup_world()
        schedule = FaultSchedule()
        schedule.add(imu_failure("uav3", at_time=1.0))
        while world.time < 2.0:
            world.step()
            schedule.step(world.time, world.uavs)
        assert world.uavs["uav3"].sensors.imu.measure((3.0, 0.0, 0.0)) == (0.0, 0.0, 0.0)

    def test_battery_collapse(self):
        world = self.setup_world()
        uav = world.uavs["uav1"]
        uav.battery.soc = 0.9
        schedule = FaultSchedule()
        schedule.add(battery_collapse("uav1", at_time=5.0, soc_drop_to=0.3))
        while world.time < 7.0:
            world.step()
            schedule.step(world.time, world.uavs)
        assert uav.battery.faulted
        assert uav.battery.soc <= 0.31

    def test_unknown_target_rejected_at_add(self):
        world = self.setup_world()
        schedule = FaultSchedule()
        with pytest.raises(KeyError):
            schedule.add(imu_failure("ghost", at_time=0.0), world.uavs)

    def test_step_tolerates_fleet_changes(self):
        """A fault whose target left the fleet waits instead of crashing."""
        world = self.setup_world()
        schedule = FaultSchedule()
        schedule.add(imu_failure("uav1", at_time=1.0), world.uavs)
        schedule.add(imu_failure("uav2", at_time=50.0), world.uavs)
        while world.time < 3.0:
            world.step()
            schedule.step(world.time, world.uavs)
        assert not world.uavs["uav1"].sensors.imu.healthy
        # uav1's fault is done and uav2 gets decommissioned: neither the
        # done fault nor the now-targetless pending one may crash step().
        removed = world.uavs.pop("uav2")
        schedule.step(60.0, world.uavs)
        assert removed.sensors.imu.healthy
        # The fleet change heals: re-registering the UAV lets it fire.
        world.uavs["uav2"] = removed
        schedule.step(61.0, world.uavs)
        assert not removed.sensors.imu.healthy

    def test_all_applied_flag(self):
        world = self.setup_world()
        schedule = FaultSchedule()
        schedule.add(imu_failure("uav1", at_time=1.0))
        schedule.add(gps_spoof("uav2", at_time=2.0, offset_m=(1.0, 0.0, 0.0)))
        assert not schedule.all_applied
        while world.time < 3.0:
            world.step()
            schedule.step(world.time, world.uavs)
        assert schedule.all_applied
