"""Unit tests for the ConSert model and its composition semantics."""

import pytest

from repro.core.conserts import (
    AndNode,
    ConSert,
    Demand,
    Guarantee,
    OrNode,
    RuntimeEvidence,
)


def provider_consert(offering=True):
    ev = RuntimeEvidence("provider_ok", offering)
    return (
        ConSert(
            name="provider",
            guarantees=[
                Guarantee("service_ok", AndNode([ev])),
                Guarantee("service_degraded", None),
            ],
        ),
        ev,
    )


class TestRuntimeEvidence:
    def test_set_and_read(self):
        ev = RuntimeEvidence("x")
        assert not ev.satisfied()
        ev.set(True)
        assert ev.satisfied()

    def test_set_coerces_to_bool(self):
        ev = RuntimeEvidence("x")
        ev.set(1)
        assert ev.value is True


class TestGates:
    def test_and_node(self):
        a, b = RuntimeEvidence("a", True), RuntimeEvidence("b", False)
        assert not AndNode([a, b]).satisfied()
        b.set(True)
        assert AndNode([a, b]).satisfied()

    def test_or_node(self):
        a, b = RuntimeEvidence("a", False), RuntimeEvidence("b", False)
        assert not OrNode([a, b]).satisfied()
        a.set(True)
        assert OrNode([a, b]).satisfied()

    def test_nested_gates(self):
        a = RuntimeEvidence("a", True)
        b = RuntimeEvidence("b", False)
        c = RuntimeEvidence("c", True)
        tree = AndNode([a, OrNode([b, c])])
        assert tree.satisfied()


class TestDemand:
    def test_satisfied_by_bound_provider(self):
        provider, _ = provider_consert(offering=True)
        demand = Demand("d", frozenset({"service_ok"}))
        assert not demand.satisfied()  # unbound
        demand.bind(provider)
        assert demand.satisfied()

    def test_unsatisfied_when_provider_degrades(self):
        provider, ev = provider_consert(offering=True)
        demand = Demand("d", frozenset({"service_ok"})).bind(provider)
        ev.set(False)
        assert not demand.satisfied()

    def test_accepts_alternative_guarantees(self):
        provider, ev = provider_consert(offering=False)
        demand = Demand("d", frozenset({"service_ok", "service_degraded"})).bind(provider)
        assert demand.satisfied()  # degraded is also acceptable

    def test_any_of_multiple_providers(self):
        p1, ev1 = provider_consert(offering=False)
        p2, _ = provider_consert(offering=True)
        demand = Demand("d", frozenset({"service_ok"}))
        demand.bind(p1).bind(p2)
        assert demand.satisfied()


class TestConSert:
    def test_strongest_guarantee_wins(self):
        strong_ev = RuntimeEvidence("strong", True)
        consert = ConSert(
            name="c",
            guarantees=[
                Guarantee("strong", AndNode([strong_ev])),
                Guarantee("weak", None),
            ],
        )
        assert consert.evaluate().name == "strong"
        strong_ev.set(False)
        assert consert.evaluate().name == "weak"

    def test_default_guarantee_always_offered(self):
        consert = ConSert(name="c", guarantees=[Guarantee("default", None)])
        assert consert.evaluate().name == "default"

    def test_no_satisfiable_guarantee_returns_none(self):
        consert = ConSert(
            name="c",
            guarantees=[Guarantee("only", AndNode([RuntimeEvidence("e", False)]))],
        )
        assert consert.evaluate() is None

    def test_ranks_assigned_in_order(self):
        consert = ConSert(
            name="c",
            guarantees=[Guarantee("a", None), Guarantee("b", None)],
        )
        assert [g.rank for g in consert.guarantees] == [0, 1]

    def test_add_guarantee_appends_weakest(self):
        consert = ConSert(name="c", guarantees=[Guarantee("a", None)])
        added = consert.add_guarantee(Guarantee("z", None))
        assert added.rank == 1
        assert consert.guarantee_names() == ["a", "z"]

    def test_evidence_nodes_enumeration(self):
        a, b = RuntimeEvidence("a"), RuntimeEvidence("b")
        consert = ConSert(
            name="c",
            guarantees=[Guarantee("g", AndNode([a, OrNode([b])]))],
        )
        assert {e.name for e in consert.evidence_nodes()} == {"a", "b"}

    def test_evidence_by_name(self):
        a = RuntimeEvidence("a")
        consert = ConSert(name="c", guarantees=[Guarantee("g", AndNode([a]))])
        assert consert.evidence_by_name("a") is a
        with pytest.raises(KeyError):
            consert.evidence_by_name("zzz")

    def test_demand_nodes_enumeration(self):
        provider, _ = provider_consert()
        demand = Demand("d", frozenset({"service_ok"})).bind(provider)
        consert = ConSert(name="c", guarantees=[Guarantee("g", AndNode([demand]))])
        assert consert.demand_nodes() == [demand]

    def test_shared_evidence_not_duplicated(self):
        a = RuntimeEvidence("a")
        consert = ConSert(
            name="c",
            guarantees=[
                Guarantee("g1", AndNode([a])),
                Guarantee("g2", OrNode([a])),
            ],
        )
        assert len(consert.evidence_nodes()) == 1

    def test_three_level_composition(self):
        # sensor -> localization -> navigation chain re-evaluates live.
        sensor_ev = RuntimeEvidence("sensor_ok", True)
        sensor = ConSert(
            "sensor",
            guarantees=[
                Guarantee("sensor_ok", AndNode([sensor_ev])),
                Guarantee("sensor_bad", None),
            ],
        )
        localization = ConSert(
            "loc",
            guarantees=[
                Guarantee(
                    "loc_ok",
                    AndNode([Demand("s", frozenset({"sensor_ok"})).bind(sensor)]),
                ),
                Guarantee("loc_bad", None),
            ],
        )
        navigation = ConSert(
            "nav",
            guarantees=[
                Guarantee(
                    "nav_ok",
                    AndNode([Demand("l", frozenset({"loc_ok"})).bind(localization)]),
                ),
                Guarantee("nav_bad", None),
            ],
        )
        assert navigation.evaluate().name == "nav_ok"
        sensor_ev.set(False)
        assert navigation.evaluate().name == "nav_bad"
