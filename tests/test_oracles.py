"""The property-oracle suite: predicates, runner, chaos detection.

The oracles are the fuzzer's ground truth, so they get tested from both
sides: clean scenarios (including every archived ``scenarios/*.json``)
must pass all oracles, and each scripted chaos mode must trip exactly
the oracle built to catch it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.oracles import (
    Violation,
    landed_step_ok,
    run_scenario_oracles,
    soc_step_ok,
    teleport_bound_m,
    teleport_step_ok,
)

SCENARIOS = sorted(
    (Path(__file__).resolve().parent.parent / "scenarios").glob("*.json")
)

BASE = {
    "seed": 7,
    "dt": 0.5,
    "uavs": [
        {"id": "uav1", "base": [10, 10, 0],
         "mission": [[200, 200, 30], [50, 250, 25]]},
        {"id": "uav2", "base": [30, 10, 0], "mission": [[250, 60, 20]]},
    ],
    "horizon_s": 30.0,
}


def _base(**overrides):
    config = json.loads(json.dumps(BASE))
    config.update(overrides)
    return config


class TestPredicates:
    def test_soc_monotonic(self):
        assert soc_step_ok(0.8, 0.79)
        assert soc_step_ok(0.8, 0.8)
        assert soc_step_ok(0.8, 0.8 + 1e-16)  # within float slack
        assert not soc_step_ok(0.8, 0.81)

    def test_teleport_bound(self):
        assert teleport_step_ok((0, 0, 0), (5, 0, 0), v_max=10.0, dt=0.5)
        assert not teleport_step_ok((0, 0, 0), (5.1, 0, 0), v_max=10.0, dt=0.5)

    def test_teleport_bound_includes_wind_drift(self):
        # 15% of a 10 m/s wind is unrejected: the true ground-speed
        # bound in wind is (v_max + drift) * dt.
        assert not teleport_step_ok((0, 0, 0), (5.5, 0, 0), 10.0, 0.5)
        assert teleport_step_ok((0, 0, 0), (5.5, 0, 0), 10.0, 0.5,
                                drift_mps=1.5)
        assert teleport_bound_m(10.0, 0.5, drift_mps=1.5) == pytest.approx(
            5.75, rel=1e-9
        )

    def test_landed_exact_equality(self):
        assert landed_step_ok((1.0, 2.0, 0.0), (1.0, 2.0, 0.0))
        assert not landed_step_ok((1.0, 2.0, 0.0), (1.0 + 1e-12, 2.0, 0.0))

    def test_violation_round_trips(self):
        violation = Violation("teleport_bound", 3.5, "uav1", "jumped")
        assert violation.to_dict() == {
            "oracle": "teleport_bound", "time": 3.5,
            "uav": "uav1", "message": "jumped",
        }


class TestCleanScenariosPass:
    @pytest.mark.parametrize(
        "path", SCENARIOS, ids=[p.stem for p in SCENARIOS]
    )
    def test_archived_scenarios_pass_all_oracles(self, path):
        report = run_scenario_oracles(
            json.loads(path.read_text()), horizon_s=12.0
        )
        assert report.passed, [v.to_dict() for v in report.violations]
        assert set(report.checked) == {
            "soc_monotonic", "teleport_bound", "landed_drift",
            "planned_path_clearance", "engine_lockstep", "guarantee_sanity",
            "assurance_lockstep", "no_unhandled_exception",
        }

    def test_report_shape_and_determinism(self):
        first = run_scenario_oracles(_base())
        second = run_scenario_oracles(_base())
        assert first.to_dict() == second.to_dict()
        assert first.passed
        assert first.steps == 60  # 30 s at dt=0.5
        assert first.horizon_s == 30.0

    def test_horizon_argument_overrides_config(self):
        report = run_scenario_oracles(_base(), horizon_s=5.0)
        assert report.steps == 10

    def test_windy_mission_passes_teleport_oracle(self):
        # Regression: wind drift moves UAVs beyond v_max*dt; the oracle
        # must use the drift-aware bound, not flag physics as a bug.
        config = _base(environment={"wind_mean_mps": 11.0,
                                    "wind_direction_deg": 45.0})
        report = run_scenario_oracles(config)
        assert report.passed, [v.to_dict() for v in report.violations]


class TestChaosDetection:
    """Each scripted engine bug trips exactly its oracle."""

    @pytest.mark.parametrize(
        "mode, oracle",
        [
            ("teleport", "teleport_bound"),
            ("soc_jump", "soc_monotonic"),
            ("exception", "no_unhandled_exception"),
        ],
    )
    def test_chaos_mode_trips_its_oracle(self, mode, oracle):
        config = _base(chaos={"mode": mode, "uav": "uav1", "at": 10.0})
        report = run_scenario_oracles(config)
        assert not report.passed
        assert oracle in report.violated_oracles
        violation = report.violations[0]
        assert violation.oracle == oracle
        assert violation.time == pytest.approx(10.0)

    def test_chaos_armed_file_gates_the_bug(self, tmp_path):
        armed = tmp_path / "armed"
        config = _base(
            chaos={"mode": "teleport", "uav": "uav1", "at": 10.0,
                   "armed_file": str(armed)}
        )
        assert run_scenario_oracles(config).passed  # file absent: disarmed
        armed.touch()
        assert not run_scenario_oracles(config).passed

    def test_unknown_chaos_mode_rejected(self):
        config = _base(chaos={"mode": "warp", "at": 1.0})
        with pytest.raises(ValueError, match="chaos.mode"):
            run_scenario_oracles(config)

    def test_violation_flood_is_capped(self):
        # A bug that fires every step must not produce an unbounded
        # report: each oracle caps its recorded violations and counts
        # the overflow instead.
        from repro.harness.oracles import Oracle

        oracle = Oracle(max_violations=10)
        for step in range(25):
            oracle.record(float(step), "uav1", "boom")
        assert len(oracle.violations) == 10
        assert oracle.suppressed == 15
