"""Unit tests for fault trees with complex basic events."""

from dataclasses import dataclass

import pytest

from repro.safedrones.fta import (
    AndGate,
    BasicEvent,
    ComplexBasicEvent,
    FaultTree,
    KooNGate,
    OrGate,
)


@dataclass
class FakeModel:
    failure_probability: float = 0.25


class TestBasicEvent:
    def test_returns_probability(self):
        assert BasicEvent("e", 0.3).evaluate() == 0.3

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BasicEvent("e", 1.5).evaluate()


class TestComplexBasicEvent:
    def test_reads_model_lazily(self):
        model = FakeModel(0.1)
        event = ComplexBasicEvent("c", model)
        assert event.evaluate() == 0.1
        model.failure_probability = 0.8
        assert event.evaluate() == 0.8

    def test_rejects_bad_model_output(self):
        with pytest.raises(ValueError):
            ComplexBasicEvent("c", FakeModel(2.0)).evaluate()


class TestGates:
    def test_and_gate_product(self):
        gate = AndGate("g", [BasicEvent("a", 0.5), BasicEvent("b", 0.4)])
        assert gate.evaluate() == pytest.approx(0.2)

    def test_or_gate_inclusion_exclusion(self):
        gate = OrGate("g", [BasicEvent("a", 0.5), BasicEvent("b", 0.4)])
        assert gate.evaluate() == pytest.approx(0.7)

    def test_empty_and_gate_is_certain(self):
        assert AndGate("g", []).evaluate() == 1.0

    def test_empty_or_gate_is_impossible(self):
        assert OrGate("g", []).evaluate() == 0.0

    def test_koon_equals_binomial_for_identical_children(self):
        # 2-out-of-3 with p=0.5 -> C(3,2)*0.125 + C(3,3)*0.125 = 0.5
        gate = KooNGate("g", k=2, children=[BasicEvent(f"e{i}", 0.5) for i in range(3)])
        assert gate.evaluate() == pytest.approx(0.5)

    def test_koon_1_of_n_equals_or(self):
        events = [BasicEvent("a", 0.3), BasicEvent("b", 0.2)]
        koon = KooNGate("g", k=1, children=list(events))
        or_gate = OrGate("g", list(events))
        assert koon.evaluate() == pytest.approx(or_gate.evaluate())

    def test_koon_n_of_n_equals_and(self):
        events = [BasicEvent("a", 0.3), BasicEvent("b", 0.2)]
        koon = KooNGate("g", k=2, children=list(events))
        and_gate = AndGate("g", list(events))
        assert koon.evaluate() == pytest.approx(and_gate.evaluate())

    def test_koon_heterogeneous_probabilities(self):
        # 2-of-3 with p = 0.1, 0.2, 0.3: exact enumeration.
        p = [0.1, 0.2, 0.3]
        exact = (
            p[0] * p[1] * (1 - p[2])
            + p[0] * (1 - p[1]) * p[2]
            + (1 - p[0]) * p[1] * p[2]
            + p[0] * p[1] * p[2]
        )
        gate = KooNGate(
            "g", k=2, children=[BasicEvent(f"e{i}", pi) for i, pi in enumerate(p)]
        )
        assert gate.evaluate() == pytest.approx(exact)

    def test_koon_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KooNGate("g", k=0, children=[BasicEvent("a", 0.1)]).evaluate()
        with pytest.raises(ValueError):
            KooNGate("g", k=3, children=[BasicEvent("a", 0.1)]).evaluate()


class TestFaultTree:
    def make_uav_tree(self):
        return FaultTree(
            name="uav_loss",
            top=OrGate(
                "loss",
                [
                    AndGate(
                        "redundant_nav",
                        [BasicEvent("gps", 0.1), BasicEvent("vision", 0.2)],
                    ),
                    BasicEvent("battery", 0.05),
                ],
            ),
        )

    def test_top_event_probability(self):
        tree = self.make_uav_tree()
        expected = 1.0 - (1.0 - 0.1 * 0.2) * (1.0 - 0.05)
        assert tree.top_event_probability() == pytest.approx(expected)

    def test_leaves_enumeration(self):
        tree = self.make_uav_tree()
        assert [leaf.name for leaf in tree.leaves()] == ["gps", "vision", "battery"]

    def test_minimal_cut_sets(self):
        tree = self.make_uav_tree()
        cuts = tree.minimal_cut_sets()
        assert frozenset({"battery"}) in cuts
        assert frozenset({"gps", "vision"}) in cuts
        assert len(cuts) == 2

    def test_minimal_cut_sets_absorb_supersets(self):
        # battery OR (battery AND gps) -> only {battery}.
        tree = FaultTree(
            name="t",
            top=OrGate(
                "top",
                [
                    BasicEvent("battery", 0.1),
                    AndGate("a", [BasicEvent("battery", 0.1), BasicEvent("gps", 0.1)]),
                ],
            ),
        )
        assert tree.minimal_cut_sets() == [frozenset({"battery"})]

    def test_koon_cut_sets(self):
        tree = FaultTree(
            name="motors",
            top=KooNGate(
                "2of3", k=2, children=[BasicEvent(f"m{i}", 0.1) for i in range(3)]
            ),
        )
        cuts = tree.minimal_cut_sets()
        assert len(cuts) == 3
        assert all(len(c) == 2 for c in cuts)

    def test_complex_event_updates_flow_through(self):
        model = FakeModel(0.0)
        tree = FaultTree("t", top=ComplexBasicEvent("c", model))
        assert tree.top_event_probability() == 0.0
        model.failure_probability = 0.42
        assert tree.top_event_probability() == 0.42
