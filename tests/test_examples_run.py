"""End-to-end checks: every shipped example runs and prints its headline.

These execute the actual example scripts in subprocesses — the same
commands the README advertises — so a broken public API surface cannot
slip past the suite.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": ["persons found:", "detection accuracy:"],
    "battery_failure_availability.py": ["availability improvement", "threshold"],
    "sar_accuracy_adaptation.py": ["uncertainty after descent", "99."],
    "spoofing_attack_response.py": ["Security EDDI detection", "landing error"],
    "conserts_playground.py": ["MISSION:", "ODE package serialised"],
    "fleet_resilience.py": ["task_redistribution_needed", "post-flight KPIs"],
    "scenario_driven.py": ["guarantee timeline", "fault campaign log"],
}


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs_and_prints_headlines(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in EXPECTED_OUTPUT[name]:
        assert needle in result.stdout, (
            f"{name}: expected {needle!r} in output;\n{result.stdout[-2000:]}"
        )


def test_every_example_is_covered():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(EXPECTED_OUTPUT), (
        "examples and EXPECTED_OUTPUT out of sync"
    )
