"""Unit tests for the ROS-like bus and the attack injectors."""

import pytest

from repro.middleware.attacks import EavesdropAttack, MitmAttack, SpoofingAttack
from repro.middleware.rosbus import Message, RosBus


@pytest.fixture
def bus():
    return RosBus()


class TestRosBus:
    def test_publish_delivers_to_subscriber(self, bus):
        received = []
        bus.subscribe("/t", "node", received.append)
        bus.publish("/t", {"x": 1}, sender="a")
        assert len(received) == 1
        assert received[0].data == {"x": 1}

    def test_publish_does_not_cross_topics(self, bus):
        received = []
        bus.subscribe("/a", "node", received.append)
        bus.publish("/b", 1, sender="s")
        assert received == []

    def test_multiple_subscribers_all_receive(self, bus):
        hits = []
        bus.subscribe("/t", "n1", lambda m: hits.append("n1"))
        bus.subscribe("/t", "n2", lambda m: hits.append("n2"))
        bus.publish("/t", None, sender="s")
        assert hits == ["n1", "n2"]

    def test_unsubscribe_stops_delivery(self, bus):
        received = []
        sub = bus.subscribe("/t", "n", received.append)
        sub.unsubscribe()
        bus.publish("/t", 1, sender="s")
        assert received == []

    def test_sequence_numbers_increase(self, bus):
        m1 = bus.publish("/t", 1, sender="s")
        m2 = bus.publish("/t", 2, sender="s")
        assert m2.seq > m1.seq

    def test_honest_message_not_forged(self, bus):
        message = bus.publish("/t", 1, sender="uav1")
        assert message.origin == "uav1"
        assert not message.is_forged

    def test_forged_message_flagged(self, bus):
        message = bus.publish("/t", 1, sender="uav1", origin="attacker")
        assert message.is_forged

    def test_traffic_log_records_everything(self, bus):
        bus.subscribe("/t", "n", lambda m: None)
        for i in range(5):
            bus.publish("/t", i, sender="s")
        assert len(bus.traffic) == 5

    def test_traffic_log_topic_glob(self, bus):
        bus.publish("/uav1/pose", 1, sender="uav1")
        bus.publish("/uav2/pose", 1, sender="uav2")
        bus.publish("/gcs/cmd", 1, sender="gcs")
        assert len(bus.traffic.on_topic("/uav*/pose")) == 2

    def test_traffic_log_since(self, bus):
        bus.advance_clock(1.0)
        bus.publish("/t", 1, sender="s")
        bus.advance_clock(5.0)
        bus.publish("/t", 2, sender="s")
        assert len(bus.traffic.since(3.0)) == 1

    def test_stamp_follows_clock(self, bus):
        bus.advance_clock(42.0)
        message = bus.publish("/t", 1, sender="s")
        assert message.stamp == 42.0

    def test_topics_lists_active_subscriptions(self, bus):
        bus.subscribe("/a", "n", lambda m: None)
        sub = bus.subscribe("/b", "n", lambda m: None)
        sub.unsubscribe()
        assert bus.topics() == ["/a"]

    def test_subscriber_nodes(self, bus):
        bus.subscribe("/t", "gcs", lambda m: None)
        bus.subscribe("/t", "uav1", lambda m: None)
        assert sorted(bus.subscriber_nodes("/t")) == ["gcs", "uav1"]

    def test_interceptor_can_drop_messages(self, bus):
        received = []
        bus.subscribe("/t", "n", received.append)
        bus.add_interceptor(lambda m: None)
        result = bus.publish("/t", 1, sender="s")
        assert result is None
        assert received == []
        assert len(bus.traffic) == 0

    def test_traffic_log_capacity_eviction(self):
        bus = RosBus()
        bus.traffic._capacity = 10
        for i in range(11):
            bus.publish("/t", i, sender="s")
        # Crossing capacity evicts the oldest half in one batch: 0..4 go,
        # 5..10 survive in their original order.
        assert [m.data for m in bus.traffic] == [5, 6, 7, 8, 9, 10]
        # The log refills until it crosses capacity again (at data=15),
        # then evicts another oldest-half batch.
        for i in range(11, 15):
            bus.publish("/t", i, sender="s")
        assert len(bus.traffic) == 10
        bus.publish("/t", 15, sender="s")
        assert [m.data for m in bus.traffic] == list(range(10, 16))

    def test_interceptors_run_in_order_and_drop_short_circuits(self):
        bus = RosBus()
        received, calls = [], []
        bus.subscribe("/t", "n", received.append)

        def replace(message):
            calls.append("replace")
            return Message(
                topic=message.topic, data=message.data + 100,
                sender=message.sender, origin="mitm", stamp=message.stamp,
                seq=message.seq,
            )

        def drop_odd(message):
            calls.append("drop")
            return None if message.data % 2 else message

        bus.add_interceptor(replace)
        bus.add_interceptor(drop_odd)
        kept = bus.publish("/t", 2, sender="uav1")
        # The second interceptor saw the first one's replacement...
        assert kept.data == 102 and kept.origin == "mitm"
        dropped = bus.publish("/t", 3, sender="uav1")
        assert dropped is None
        # ...and a drop hides the message from subscribers AND the log.
        assert [m.data for m in received] == [102]
        assert [m.data for m in bus.traffic] == [102]
        assert calls == ["replace", "drop", "replace", "drop"]

    def test_drop_before_replace_never_reaches_second_interceptor(self):
        bus = RosBus()
        calls = []
        bus.add_interceptor(lambda m: calls.append("drop") or None)
        bus.add_interceptor(lambda m: calls.append("late") or m)
        assert bus.publish("/t", 1, sender="s") is None
        assert calls == ["drop"]  # short-circuit: the chain stops at None

    def test_unsubscribe_mid_publish_skips_later_subscriber(self, bus):
        received = []
        subs = {}

        def first(message):
            received.append("first")
            subs["second"].unsubscribe()

        subs["second"] = None
        bus.subscribe("/t", "n1", first)
        subs["second"] = bus.subscribe("/t", "n2", lambda m: received.append("second"))
        bus.publish("/t", 1, sender="s")
        # The snapshot in publish() still honours the deactivation: the
        # second callback must not fire after its unsubscribe.
        assert received == ["first"]
        bus.publish("/t", 2, sender="s")
        assert received == ["first", "first"]

    def test_resubscribe_after_mid_publish_unsubscribe(self, bus):
        received = []
        sub = bus.subscribe("/t", "n", received.append)

        def nuke_then_resubscribe(message):
            sub.unsubscribe()

        bus.subscribe("/t", "killer", nuke_then_resubscribe)
        bus.publish("/t", 1, sender="s")
        assert [m.data for m in received] == [1]  # delivered before the kill
        bus.publish("/t", 2, sender="s")
        assert [m.data for m in received] == [1]
        bus.subscribe("/t", "n", received.append)
        bus.publish("/t", 3, sender="s")
        assert [m.data for m in received] == [1, 3]


class TestSpoofingAttack:
    def test_injects_forged_messages_in_window(self, bus):
        attack = SpoofingAttack(
            bus=bus,
            t_start=10.0,
            t_stop=12.0,
            name="adv",
            topic="/t",
            spoofed_sender="uav1",
            payload_fn=lambda now: now,
            rate_hz=2.0,
        )
        bus.advance_clock(11.0)
        attack.step(11.0)
        forged = [m for m in bus.traffic if m.is_forged]
        assert forged
        assert all(m.sender == "uav1" and m.origin == "adv" for m in forged)

    def test_no_injection_before_window(self, bus):
        attack = SpoofingAttack(bus=bus, t_start=10.0, name="adv", topic="/t")
        attack.step(5.0)
        assert len(bus.traffic) == 0

    def test_no_injection_after_window(self, bus):
        attack = SpoofingAttack(
            bus=bus, t_start=1.0, t_stop=2.0, name="adv", topic="/t"
        )
        attack.step(3.0)
        assert len(bus.traffic) == 0

    def test_rate_controls_message_count(self, bus):
        attack = SpoofingAttack(
            bus=bus, t_start=0.0, name="adv", topic="/t", rate_hz=10.0
        )
        attack.step(1.0)  # 0.0 .. 1.0 at 10 Hz -> ~11 emissions
        assert 9 <= len(bus.traffic) <= 12


class TestMitmAttack:
    def test_rewrites_payloads_in_window(self, bus):
        received = []
        bus.subscribe("/t", "n", received.append)
        attack = MitmAttack(
            bus=bus,
            t_start=0.0,
            name="mitm",
            topic="/t",
            mutate=lambda message, data: data + 100,
        )
        attack.step(0.5)
        bus.advance_clock(1.0)
        bus.publish("/t", 1, sender="uav1")
        assert received[0].data == 101
        assert received[0].origin == "mitm"

    def test_other_topics_untouched(self, bus):
        received = []
        bus.subscribe("/other", "n", received.append)
        attack = MitmAttack(
            bus=bus, t_start=0.0, name="mitm", topic="/t",
            mutate=lambda message, data: data + 100,
        )
        attack.step(0.5)
        bus.advance_clock(1.0)
        bus.publish("/other", 1, sender="uav1")
        assert received[0].data == 1


class TestEavesdropAttack:
    def test_captures_matching_traffic_silently(self, bus):
        received = []
        bus.subscribe("/uav1/pose", "n", received.append)
        attack = EavesdropAttack(
            bus=bus, t_start=0.0, name="spy", topic_pattern="/uav1/*"
        )
        attack.step(0.5)
        bus.advance_clock(1.0)
        bus.publish("/uav1/pose", "secret", sender="uav1")
        bus.publish("/gcs/cmd", "other", sender="gcs")
        assert len(attack.captured) == 1
        assert attack.captured[0].data == "secret"
        # Delivery is unaffected and untraced.
        assert received[0].data == "secret"
        assert received[0].origin == "uav1"
