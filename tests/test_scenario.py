"""Tests for the declarative scenario loader and the SINADRA bridge."""

import json

import pytest

from repro.scenario import Scenario, ScenarioError, load_scenario, load_scenario_json
from repro.sinadra.situation import altitude_band, situation_from_environment
from repro.uav.environment import Environment

import numpy as np


BASIC = {
    "seed": 7,
    "area_size_m": [300, 200],
    "persons": 4,
    "uavs": [
        {"id": "uav1", "base": [10, -10, 0], "rotors": 4},
        {"id": "uav2", "base": [150, -10, 0], "rotors": 6, "max_speed_mps": 9.0},
    ],
}


class TestLoadScenario:
    def test_basic_world(self):
        scenario = load_scenario(BASIC)
        assert sorted(scenario.world.uavs) == ["uav1", "uav2"]
        assert len(scenario.world.persons) == 4
        assert scenario.world.area_size_m == (300.0, 200.0)
        assert scenario.world.uavs["uav2"].spec.rotor_count == 6
        assert scenario.world.uavs["uav2"].dynamics.max_speed_mps == 9.0

    def test_requires_uavs(self):
        with pytest.raises(ScenarioError):
            load_scenario({"persons": 3})

    def test_duplicate_uav_rejected(self):
        config = dict(BASIC, uavs=[{"id": "a"}, {"id": "a"}])
        with pytest.raises(ScenarioError):
            load_scenario(config)

    def test_uav_needs_id(self):
        with pytest.raises(ScenarioError):
            load_scenario({"uavs": [{"base": [0, 0, 0]}]})

    def test_environment_section(self):
        config = dict(
            BASIC,
            environment={"wind_mean_mps": 6.0, "ambient_c": 32.0,
                         "visibility": "poor"},
        )
        scenario = load_scenario(config)
        assert scenario.world.environment is not None
        assert scenario.world.environment.visibility == "poor"
        scenario.step()
        assert scenario.world.environment.current_wind_mps > 0.0

    def test_faults_applied_during_run(self):
        config = dict(
            BASIC,
            faults=[
                {"type": "gps_denial", "uav": "uav1", "at": 2.0, "duration": 5.0},
                {"type": "motor_failure", "uav": "uav2", "at": 3.0},
            ],
        )
        scenario = load_scenario(config)
        scenario.run_until(4.0)
        assert scenario.world.uavs["uav1"].sensors.gps.denied
        assert scenario.world.uavs["uav2"].motors_failed == 1
        scenario.run_until(8.0)
        assert not scenario.world.uavs["uav1"].sensors.gps.denied

    def test_fault_unknown_uav_rejected(self):
        config = dict(
            BASIC, faults=[{"type": "imu_failure", "uav": "ghost", "at": 1.0}]
        )
        with pytest.raises(ScenarioError):
            load_scenario(config)

    def test_fault_unknown_type_rejected(self):
        config = dict(
            BASIC, faults=[{"type": "warp_core_breach", "uav": "uav1", "at": 1.0}]
        )
        with pytest.raises(ScenarioError):
            load_scenario(config)

    def test_gps_spoof_needs_offset(self):
        config = dict(
            BASIC, faults=[{"type": "gps_spoof", "uav": "uav1", "at": 1.0}]
        )
        with pytest.raises(ScenarioError):
            load_scenario(config)

    def test_ros_attack_injects_traffic(self):
        config = dict(
            BASIC,
            attacks=[
                {"type": "ros_spoofing", "topic": "/uav1/pose",
                 "sender": "uav1", "start": 1.0, "rate_hz": 4.0}
            ],
        )
        scenario = load_scenario(config)
        scenario.run_until(5.0)
        forged = [m for m in scenario.world.bus.traffic if m.is_forged]
        assert forged

    def test_unknown_attack_rejected(self):
        config = dict(BASIC, attacks=[{"type": "emp"}])
        with pytest.raises(ScenarioError):
            load_scenario(config)

    def test_json_roundtrip(self):
        scenario = load_scenario_json(json.dumps(BASIC))
        assert isinstance(scenario, Scenario)
        assert sorted(scenario.world.uavs) == ["uav1", "uav2"]

    def test_json_rejects_garbage(self):
        with pytest.raises(ScenarioError):
            load_scenario_json("not json{")
        with pytest.raises(ScenarioError):
            load_scenario_json("[1, 2, 3]")

    def test_deterministic_given_seed(self):
        a = load_scenario(BASIC)
        b = load_scenario(BASIC)
        assert [p.position for p in a.world.persons] == [
            p.position for p in b.world.persons
        ]


class TestSituationBridge:
    def test_altitude_bands(self):
        assert altitude_band(20.0) == "low"
        assert altitude_band(23.0) == "low"
        assert altitude_band(30.0) == "high"
        with pytest.raises(ValueError):
            altitude_band(0.0)

    def test_situation_carries_environment_visibility(self):
        env = Environment(rng=np.random.default_rng(0), visibility="poor")
        situation = situation_from_environment(env, 40.0, 0.8, 0.3)
        assert situation.visibility == "poor"
        assert situation.altitude_band == "high"
        assert situation.detection_uncertainty == 0.8
        assert situation.occupancy_prior == 0.3


class TestArchivedScenarios:
    """Every scenario file shipped in scenarios/ must load and run."""

    @pytest.mark.parametrize(
        "name",
        ["fig5_battery_fault", "spoofing_attack", "windy_night_sar"],
    )
    def test_archived_scenario_loads_and_steps(self, name):
        import pathlib

        path = pathlib.Path(__file__).parent.parent / "scenarios" / f"{name}.json"
        scenario = load_scenario_json(path.read_text())
        assert len(scenario.world.uavs) == 3
        scenario.run_until(5.0)
        assert scenario.world.time >= 5.0
