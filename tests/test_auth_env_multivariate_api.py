"""Unit tests for message authentication, the environment model,
multivariate SafeML measures, the web API, and combination coverage."""

import json

import numpy as np
import pytest

from repro.middleware.auth import MessageSigner, SignedPayload, VerifyingSubscriber
from repro.middleware.rosbus import RosBus
from repro.safeml.multivariate import (
    energy_distance,
    median_heuristic_bandwidth,
    mmd_rbf,
    multivariate_shift_pvalue,
)
from repro.uav.dynamics import UavDynamics
from repro.uav.environment import Environment, GustProcess

KEY = b"fleet-shared-key"


def make_channel():
    bus = RosBus()
    received = []
    signer = MessageSigner(node="uav1", key=KEY)
    subscriber = VerifyingSubscriber(
        bus=bus,
        topic="/uav1/pose",
        node="mapper",
        key=KEY,
        on_message=lambda sender, body: received.append((sender, body)),
    )
    return bus, signer, subscriber, received


class TestMessageAuthentication:
    def test_authentic_messages_delivered(self):
        bus, signer, subscriber, received = make_channel()
        signer.publish(bus, "/uav1/pose", {"east": 1.0})
        signer.publish(bus, "/uav1/pose", {"east": 2.0})
        assert received == [("uav1", {"east": 1.0}), ("uav1", {"east": 2.0})]
        assert subscriber.accepted == 2

    def test_unsigned_spoof_rejected(self):
        bus, signer, subscriber, received = make_channel()
        bus.publish("/uav1/pose", {"forged": True}, sender="uav1", origin="adversary")
        assert received == []
        assert subscriber.rejected["unsigned"] == 1

    def test_forged_tag_rejected(self):
        bus, signer, subscriber, received = make_channel()
        fake = SignedPayload(sender="uav1", seq=99, body={"x": 1}, tag="00" * 32)
        bus.publish("/uav1/pose", fake, sender="uav1", origin="adversary")
        assert received == []
        assert subscriber.rejected["bad_tag"] == 1

    def test_wrong_key_rejected(self):
        bus, _, subscriber, received = make_channel()
        rogue = MessageSigner(node="uav1", key=b"guessed-key")
        rogue.publish(bus, "/uav1/pose", {"x": 1})
        assert received == []
        assert subscriber.rejected["bad_tag"] == 1

    def test_replay_rejected(self):
        bus, signer, subscriber, received = make_channel()
        payload = signer.sign({"east": 1.0})
        bus.publish("/uav1/pose", payload, sender="uav1")
        bus.publish("/uav1/pose", payload, sender="uav1", origin="adversary")
        assert len(received) == 1
        assert subscriber.rejected["replay"] == 1

    def test_tampered_body_rejected(self):
        bus, signer, subscriber, received = make_channel()
        payload = signer.sign({"east": 1.0})
        tampered = SignedPayload(
            sender=payload.sender, seq=payload.seq,
            body={"east": 999.0}, tag=payload.tag,
        )
        bus.publish("/uav1/pose", tampered, sender="uav1", origin="adversary")
        assert received == []
        assert subscriber.rejected["bad_tag"] == 1


class TestEnvironment:
    def make(self, seed=0, **kwargs):
        return Environment(rng=np.random.default_rng(seed), **kwargs)

    def test_gust_stays_near_mean(self):
        gusts = GustProcess(rng=np.random.default_rng(0), mean_mps=5.0)
        values = [gusts.step(0.5) for _ in range(2000)]
        assert np.mean(values) == pytest.approx(5.0, abs=0.5)
        assert np.std(values) > 0.2

    def test_gust_never_negative(self):
        gusts = GustProcess(
            rng=np.random.default_rng(1), mean_mps=0.5, gust_sigma_mps=2.0
        )
        assert all(gusts.step(0.5) >= 0.0 for _ in range(500))

    def test_gust_rejects_bad_dt(self):
        gusts = GustProcess(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            gusts.step(0.0)

    def test_wind_vector_direction_convention(self):
        env = self.make(wind_direction_deg=270.0)  # from the west
        env.current_wind_mps = 5.0
        east, north, up = env.wind_vector()
        assert east == pytest.approx(5.0, abs=1e-9)  # blows toward the east
        assert north == pytest.approx(0.0, abs=1e-9)
        assert up == 0.0

    def test_wind_drift_displaces_airborne_uav(self):
        env = self.make(wind_direction_deg=270.0)
        env.current_wind_mps = 10.0
        dynamics = UavDynamics(position=(0.0, 0.0, 20.0))
        for _ in range(100):
            env.apply_wind_drift(dynamics, dt=0.5, rejection=0.8)
        assert dynamics.position[0] > 50.0  # 10 m/s * 20% * 50 s = 100 m

    def test_no_drift_on_ground(self):
        env = self.make()
        env.current_wind_mps = 10.0
        dynamics = UavDynamics(position=(0.0, 0.0, 0.0))
        env.apply_wind_drift(dynamics, dt=0.5)
        assert dynamics.position == (0.0, 0.0, 0.0)

    def test_rejects_bad_rejection(self):
        env = self.make()
        with pytest.raises(ValueError):
            env.apply_wind_drift(UavDynamics(position=(0, 0, 10)), 0.5, rejection=2.0)

    def test_extra_power_quadratic(self):
        env = self.make()
        env.current_wind_mps = 10.0
        strong = env.extra_power_draw_w(1000.0)
        env.current_wind_mps = 5.0
        weak = env.extra_power_draw_w(1000.0)
        assert strong == pytest.approx(4.0 * weak)
        assert strong == pytest.approx(300.0)

    def test_diurnal_temperature_cycles(self):
        env = self.make()
        env.step(0.5, now=6 * 3600.0)  # a quarter period in
        morning = env.ambient_temperature_c
        env.step(0.5, now=18 * 3600.0)
        evening = env.ambient_temperature_c
        assert morning != evening

    def test_rejects_unknown_visibility(self):
        with pytest.raises(ValueError):
            self.make(visibility="hazy")


RNG = np.random.default_rng(7)
SAME_A = RNG.normal(0.0, 1.0, size=(60, 3))
SAME_B = RNG.normal(0.0, 1.0, size=(60, 3))
SHIFTED = RNG.normal(1.5, 1.0, size=(60, 3))


def correlation_rotated(n=150):
    """Same marginals, different joint structure."""
    rng = np.random.default_rng(8)
    z = rng.normal(0.0, 1.0, size=(n, 1))
    correlated = np.hstack([z, z, rng.normal(size=(n, 1))])
    independent = rng.normal(0.0, 1.0, size=(n, 3))
    # Standardise both so marginals match closely.
    correlated = (correlated - correlated.mean(0)) / correlated.std(0)
    independent = (independent - independent.mean(0)) / independent.std(0)
    return correlated, independent


class TestMultivariateDistances:
    def test_energy_nonnegative_and_zero_on_self(self):
        assert energy_distance(SAME_A, SAME_A) == pytest.approx(0.0, abs=1e-9)
        assert energy_distance(SAME_A, SAME_B) >= 0.0

    def test_energy_detects_mean_shift(self):
        assert energy_distance(SAME_A, SHIFTED) > 5.0 * energy_distance(SAME_A, SAME_B)

    def test_energy_symmetric(self):
        assert energy_distance(SAME_A, SHIFTED) == pytest.approx(
            energy_distance(SHIFTED, SAME_A)
        )

    def test_energy_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            energy_distance(SAME_A, np.zeros((10, 2)))

    def test_energy_rejects_nan(self):
        bad = SAME_A.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            energy_distance(bad, SAME_B)

    def test_mmd_detects_mean_shift(self):
        assert mmd_rbf(SAME_A, SHIFTED) > 5.0 * mmd_rbf(SAME_A, SAME_B)

    def test_mmd_detects_correlation_change(self):
        # Perfectly correlated pair vs independent pair: identical
        # marginals, different joint — only a multivariate test sees it.
        correlated, independent = correlation_rotated()
        rng = np.random.default_rng(9)
        null = mmd_rbf(
            rng.normal(0.0, 1.0, size=(150, 3)),
            rng.normal(0.0, 1.0, size=(150, 3)),
        )
        assert mmd_rbf(correlated, independent) > 2.0 * null

    def test_bandwidth_positive(self):
        assert median_heuristic_bandwidth(SAME_A, SAME_B) > 0.0

    def test_permutation_pvalue_behaviour(self):
        _, p_null = multivariate_shift_pvalue(
            SAME_A, SAME_B, n_permutations=60, rng=np.random.default_rng(1)
        )
        _, p_shift = multivariate_shift_pvalue(
            SAME_A, SHIFTED, n_permutations=60, rng=np.random.default_rng(1)
        )
        assert p_shift < 0.05 < p_null

    def test_univariate_input_accepted(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([1.0, 2.0, 3.0, 4.0])
        assert energy_distance(a, b) == pytest.approx(0.0, abs=1e-12)


class TestCombinationCoverage:
    def test_pair_coverage_below_marginal(self):
        from repro.deepknowledge.knowledge import DeepKnowledgeAnalyzer
        from repro.deepknowledge.network import FeedForwardNetwork, TrainConfig

        rng = np.random.default_rng(2)
        x = rng.normal(0.0, 1.0, size=(400, 3))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        net = FeedForwardNetwork([3, 12, 2], rng=np.random.default_rng(3))
        net.train(x, y, TrainConfig(epochs=10))
        analyzer = DeepKnowledgeAnalyzer(network=net)
        analyzer.fit(x, x + 0.5)
        marginal = analyzer.coverage(x)
        pairwise = analyzer.combination_coverage(x)
        assert 0.0 < pairwise.score <= marginal.score + 1e-9

    def test_requires_two_tk_neurons(self):
        from repro.deepknowledge.knowledge import DeepKnowledgeAnalyzer
        from repro.deepknowledge.network import FeedForwardNetwork

        rng = np.random.default_rng(2)
        x = rng.normal(0.0, 1.0, size=(50, 2))
        net = FeedForwardNetwork([2, 4, 2], rng=np.random.default_rng(3))
        analyzer = DeepKnowledgeAnalyzer(network=net, tk_fraction=0.2)
        analyzer.fit(x, x)
        if len(analyzer.tk_neurons) < 2:
            with pytest.raises(ValueError):
                analyzer.combination_coverage(x)


class TestWebApi:
    def build(self):
        from repro.experiments.common import build_three_uav_world
        from repro.platform.api import WebApi
        from repro.platform.database import DatabaseManager
        from repro.platform.gcs import GroundControlStation
        from repro.platform.recorder import FlightRecorder
        from repro.platform.uav_manager import UavManager
        from repro.security.broker import MqttBroker
        from repro.security.ids import IntrusionDetectionSystem

        scenario = build_three_uav_world(seed=4, n_persons=0)
        world = scenario.world
        manager = UavManager(bus=world.bus, database=DatabaseManager())
        recorder = FlightRecorder(bus=world.bus)
        for uav in world.uavs.values():
            manager.connect(uav)
            recorder.watch(uav.spec.uav_id)
        gcs = GroundControlStation(bus=world.bus, uav_manager=manager)
        ids = IntrusionDetectionSystem(bus=world.bus, broker=MqttBroker())
        for node in list(world.uavs) + ["uav_manager", "gcs", "flight_recorder"]:
            ids.register_node(node)
        api = WebApi(uav_manager=manager, gcs=gcs, recorder=recorder, ids=ids)
        world.uavs["uav1"].start_mission([(350.0, 280.0, 20.0)])
        for _ in range(40):
            world.step()
        ids.scan(world.time)
        return world, api, ids

    def test_fleet_status_payload(self):
        world, api, _ = self.build()
        payload = api.fleet_status()
        assert len(payload["uavs"]) == 3
        uav1 = next(u for u in payload["uavs"] if u["id"] == "uav1")
        assert uav1["mode"] == "mission"
        assert uav1["connected"]

    def test_tracks_downsampled(self):
        world, api, _ = self.build()
        tracks = api.tracks(max_points=10)["tracks"]
        assert "uav1" in tracks
        assert 0 < len(tracks["uav1"]) <= 12

    def test_alert_feed_clean_traffic(self):
        world, api, ids = self.build()
        assert api.alert_feed() == {"alerts": []}
        world.bus.publish("/uav1/pose", 1, sender="uav1", origin="adversary")
        ids.scan(world.time)
        alerts = api.alert_feed()["alerts"]
        assert alerts
        assert alerts[-1]["suspect"] == "adversary"

    def test_dashboard_is_valid_json(self):
        world, api, _ = self.build()
        document = json.loads(api.dashboard())
        assert set(document) == {"fleet", "tracks", "alerts", "logs"}

    def test_dashboard_with_mission_panel(self):
        from repro.core.decider import MissionDecider
        from repro.core.uav_network import UavConSertNetwork

        world, api, _ = self.build()
        decider = MissionDecider()
        for i in range(3):
            network = UavConSertNetwork(uav_id=f"uav{i + 1}")
            network.set_reliability_level("high")
            decider.add_uav(network)
        document = json.loads(api.dashboard(decider.decide()))
        assert document["mission"]["verdict"] == "mission_completed_as_planned"
