"""Conformance suite for the leader–follower tasking protocol.

Table-driven: each case scripts a timeline of external events
(detections, arrivals, follower deaths, leader demotions) against a
lossless in-process bus, then pins the exact data-plane message flow and
the final task ledger — full dicts, no tolerances. The transport is
perfect here on purpose: every reject, retransmission-ignore and
reassignment in the expected flow is the protocol's own doing, not the
link's. (Lossy-transport behaviour is the property suite's job,
``tests/test_swarm_properties.py``.)

The harness steps at 1 Hz: events fire at the start of their tick, then
leaders step in sorted order, then live followers step in sorted order —
the same phase ordering as :class:`repro.swarm.sim.SwarmSim`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import pytest

from repro.middleware.rosbus import RosBus
from repro.swarm import (
    FollowerProtocol,
    FollowerState,
    LeaderProtocol,
    SwarmLedger,
    SwarmProtocolConfig,
    TaskState,
)


class Harness:
    """One squad (plus optional spare leaders) on a lossless bus."""

    def __init__(
        self,
        followers: tuple[str, ...] = ("f00_00", "f00_01"),
        config: SwarmProtocolConfig | None = None,
        extra_leaders: tuple[str, ...] = (),
        script: dict[int, list[tuple]] | None = None,
    ) -> None:
        self.bus = RosBus()
        self.ledger = SwarmLedger()
        self.config = config or SwarmProtocolConfig()
        self.script = script or {}
        self.trace: list[tuple[float, str, dict]] = []
        self.bus.add_interceptor(self._record)
        self.leaders = {
            "lead00": LeaderProtocol(
                self.bus, "lead00", list(followers), self.ledger,
                config=self.config, now=0.0,
            )
        }
        for name in extra_leaders:
            self.leaders[name] = LeaderProtocol(
                self.bus, name, [], self.ledger, config=self.config, now=0.0
            )
        self.followers = {
            fid: FollowerProtocol(
                self.bus, fid, "lead00", config=self.config, now=0.0
            )
            for fid in followers
        }
        self.paused: set[str] = set()
        self._next_step = 1

    def _record(self, message):
        if message.topic.startswith("/swarm/"):
            self.trace.append(
                (message.stamp, message.topic, json.loads(json.dumps(message.data)))
            )
        return message

    def run(self, until: int) -> None:
        """Step ticks ``[next, until]``; events fire before protocol steps."""
        for step in range(self._next_step, until + 1):
            now = float(step)
            self.bus.advance_clock(now)
            for event in self.script.get(step, ()):
                self._apply(event, now)
            for name in sorted(self.leaders):
                self.leaders[name].step(now)
            for fid in sorted(self.followers):
                if fid not in self.paused:
                    self.followers[fid].step(now)
        self._next_step = until + 1

    def _apply(self, event: tuple, now: float) -> None:
        kind = event[0]
        if kind == "detect":
            _, leader, poi_id, pos = event
            self.leaders[leader].note_task(poi_id, pos, now)
        elif kind == "arrive":
            self.followers[event[1]].arrived(now)
        elif kind == "kill":  # hard loss: silent AND unsubscribed
            self.paused.add(event[1])
            self.followers[event[1]].close()
        elif kind == "pause":  # soft loss: silent but still alive
            self.paused.add(event[1])
        elif kind == "resume":
            self.paused.discard(event[1])
        elif kind == "demote":
            # The mission-layer recovery the sim's ConSert decider runs:
            # demote, transfer released tasks, re-home live followers.
            _, leader, successor = event
            followers, released = self.leaders[leader].demote(now)
            for poi_id in released:
                self.leaders[successor].accept_task(poi_id)
            for fid in followers:
                if fid not in self.paused:
                    self.followers[fid].rehome(successor, now)
        else:  # pragma: no cover - table typo guard
            raise ValueError(f"unknown event {event!r}")


def data_flow(harness: Harness) -> list[tuple]:
    """The data-plane payload sequence: (t, src, dst, type, task, extra).

    ``extra`` is the assign attempt or the confirm ``t_visit`` (``None``
    for rejects) — enough to pin the protocol conversation exactly while
    leaving transport envelopes to :func:`test_happy_path_wire_trace`.
    """
    flow = []
    for stamp, topic, data in harness.trace:
        parts = topic.split("/")
        if len(parts) == 5 and parts[4] == "data":
            payload = data["data"]
            extra = payload.get("attempt", payload.get("t_visit"))
            flow.append(
                (stamp, parts[2], parts[3], payload["type"], payload["task"], extra)
            )
    return flow


def task_dict(
    poi_id: str,
    pos: list[float],
    t_detected: float,
    state: str,
    leader: str | None,
    attempts: int,
    assignments: list[tuple[float, str, float | None, str | None]],
    t_serviced: float | None,
    detected_by: str = "lead00",
    owner: str | None = None,
    orphan_reason: str | None = None,
) -> dict:
    return {
        "poi_id": poi_id,
        "pos": pos,
        "t_detected": t_detected,
        "detected_by": detected_by,
        "state": state,
        "owner": owner,
        "leader": leader,
        "attempts": attempts,
        "assignments": [
            {"t_assign": a, "follower": f, "t_closed": c, "outcome": o}
            for a, f, c, o in assignments
        ],
        "t_serviced": t_serviced,
        "orphan_reason": orphan_reason,
    }


@dataclass
class Case:
    """One scripted conformance scenario and its exact expectations."""

    id: str
    script: dict[int, list[tuple]]
    horizon: int
    flow: list[tuple]
    ledger: dict[str, dict]
    followers: tuple[str, ...] = ("f00_00", "f00_01")
    extra_leaders: tuple[str, ...] = ()
    config: SwarmProtocolConfig | None = None
    #: Leader/follower counter subsets that must match exactly.
    leader_counters: dict[str, dict[str, int]] = field(default_factory=dict)
    follower_counters: dict[str, dict[str, int]] = field(default_factory=dict)


CASES = [
    Case(
        id="assign-ack-visit-confirm",
        script={
            1: [("detect", "lead00", "poi00001", (10.0, 20.0))],
            3: [("arrive", "f00_00")],
        },
        horizon=6,
        flow=[
            (1.0, "lead00", "f00_00", "assign", "poi00001", 1),
            (5.0, "f00_00", "lead00", "confirm", "poi00001", 5.0),
        ],
        ledger={
            "poi00001": task_dict(
                "poi00001", [10.0, 20.0], 1.0, TaskState.SERVICED, "lead00",
                attempts=1,
                assignments=[(1.0, "f00_00", 5.0, "confirmed")],
                t_serviced=5.0,
            ),
        },
        leader_counters={
            "lead00": {
                "assigns": 1, "reassigns": 0, "timeouts": 0, "confirms": 1,
                "rejects": 0, "follower_deaths": 0, "duplicate_confirms": 0,
            }
        },
        follower_counters={
            "f00_00": {"assigns_taken": 1, "confirms_sent": 1, "busy_rejects": 0},
        },
    ),
    Case(
        # A single overloaded follower: task A times out while the
        # follower is still enroute, the backlogged B bounces off it with
        # busy-rejects until A completes, and both land eventually. Pins
        # the timeout outcome, the bounded backoff eligibility, and the
        # retransmitted-assign ignore (A reassigned to its own visitor).
        id="timeout-reassign-and-busy-reject",
        followers=("f00_00",),
        config=SwarmProtocolConfig(
            task_timeout_s=3.0, reassign_backoff_s=2.0, reassign_backoff_max_s=8.0
        ),
        script={
            1: [("detect", "lead00", "poi00001", (10.0, 10.0))],
            2: [("detect", "lead00", "poi00002", (20.0, 20.0))],
            7: [("arrive", "f00_00")],
            11: [("arrive", "f00_00")],
        },
        horizon=14,
        flow=[
            (1.0, "lead00", "f00_00", "assign", "poi00001", 1),
            (5.0, "lead00", "f00_00", "assign", "poi00002", 1),
            (5.0, "f00_00", "lead00", "reject", "poi00002", None),
            (6.0, "lead00", "f00_00", "assign", "poi00002", 2),
            (6.0, "f00_00", "lead00", "reject", "poi00002", None),
            (7.0, "lead00", "f00_00", "assign", "poi00001", 2),
            (9.0, "f00_00", "lead00", "confirm", "poi00001", 9.0),
            (10.0, "lead00", "f00_00", "assign", "poi00002", 3),
            (13.0, "f00_00", "lead00", "confirm", "poi00002", 13.0),
        ],
        ledger={
            "poi00001": task_dict(
                "poi00001", [10.0, 10.0], 1.0, TaskState.SERVICED, "lead00",
                attempts=2,
                assignments=[
                    (1.0, "f00_00", 5.0, "timeout"),
                    (7.0, "f00_00", 9.0, "confirmed"),
                ],
                t_serviced=9.0,
            ),
            "poi00002": task_dict(
                "poi00002", [20.0, 20.0], 2.0, TaskState.SERVICED, "lead00",
                attempts=3,
                assignments=[
                    (5.0, "f00_00", 5.0, "timeout"),
                    (6.0, "f00_00", 6.0, "timeout"),
                    (10.0, "f00_00", 13.0, "confirmed"),
                ],
                t_serviced=13.0,
            ),
        },
        leader_counters={
            "lead00": {
                "assigns": 5, "reassigns": 3, "timeouts": 1, "rejects": 2,
                "confirms": 2, "follower_deaths": 0, "duplicate_confirms": 0,
                "stale_confirms": 0,
            }
        },
        follower_counters={
            "f00_00": {
                "assigns_taken": 2, "busy_rejects": 2, "confirms_sent": 2,
                "aborted_visits": 0,
            },
        },
    ),
    Case(
        # Follower dies mid-visit (after arrival, before the dwell
        # completes): its heartbeat goes silent, the leader declares it
        # dead, and the task returns to the pool and is re-assigned.
        id="follower-death-mid-visit",
        script={
            1: [("detect", "lead00", "poi00001", (10.0, 10.0))],
            2: [("arrive", "f00_00")],
            3: [("kill", "f00_00")],
            18: [("arrive", "f00_01")],
        },
        horizon=21,
        flow=[
            (1.0, "lead00", "f00_00", "assign", "poi00001", 1),
            (17.0, "lead00", "f00_01", "assign", "poi00001", 2),
            (20.0, "f00_01", "lead00", "confirm", "poi00001", 20.0),
        ],
        ledger={
            "poi00001": task_dict(
                "poi00001", [10.0, 10.0], 1.0, TaskState.SERVICED, "lead00",
                attempts=2,
                assignments=[
                    (1.0, "f00_00", 17.0, "follower_lost"),
                    (17.0, "f00_01", 20.0, "confirmed"),
                ],
                t_serviced=20.0,
            ),
        },
        leader_counters={
            "lead00": {
                "assigns": 2, "reassigns": 1, "timeouts": 0,
                "follower_deaths": 1, "confirms": 1,
            }
        },
        follower_counters={
            "f00_01": {"assigns_taken": 1, "confirms_sent": 1},
        },
    ),
    Case(
        # Leader demotion mid-mission: open assignments close as
        # "rehome", every pending task transfers to the successor, the
        # followers abort their visits and re-home, and the successor
        # finishes the whole backlog.
        id="leader-demotion-rehomes-followers",
        extra_leaders=("lead01",),
        script={
            1: [
                ("detect", "lead00", "poi00001", (10.0, 10.0)),
                ("detect", "lead00", "poi00002", (20.0, 20.0)),
            ],
            2: [("detect", "lead00", "poi00003", (30.0, 30.0))],
            3: [("demote", "lead00", "lead01")],
            5: [("arrive", "f00_00"), ("arrive", "f00_01")],
            9: [("arrive", "f00_00")],
        },
        horizon=12,
        flow=[
            (1.0, "lead00", "f00_00", "assign", "poi00001", 1),
            (1.0, "lead00", "f00_01", "assign", "poi00002", 1),
            (3.0, "lead01", "f00_00", "assign", "poi00001", 2),
            (3.0, "lead01", "f00_01", "assign", "poi00002", 2),
            (7.0, "f00_00", "lead01", "confirm", "poi00001", 7.0),
            (7.0, "f00_01", "lead01", "confirm", "poi00002", 7.0),
            (8.0, "lead01", "f00_00", "assign", "poi00003", 1),
            (11.0, "f00_00", "lead01", "confirm", "poi00003", 11.0),
        ],
        ledger={
            "poi00001": task_dict(
                "poi00001", [10.0, 10.0], 1.0, TaskState.SERVICED, "lead01",
                attempts=2,
                assignments=[
                    (1.0, "f00_00", 3.0, "rehome"),
                    (3.0, "f00_00", 7.0, "confirmed"),
                ],
                t_serviced=7.0,
            ),
            "poi00002": task_dict(
                "poi00002", [20.0, 20.0], 1.0, TaskState.SERVICED, "lead01",
                attempts=2,
                assignments=[
                    (1.0, "f00_01", 3.0, "rehome"),
                    (3.0, "f00_01", 7.0, "confirmed"),
                ],
                t_serviced=7.0,
            ),
            "poi00003": task_dict(
                "poi00003", [30.0, 30.0], 2.0, TaskState.SERVICED, "lead01",
                attempts=1,
                assignments=[(8.0, "f00_00", 11.0, "confirmed")],
                t_serviced=11.0,
            ),
        },
        leader_counters={
            "lead00": {"assigns": 2, "confirms": 0},
            "lead01": {"adoptions": 2, "assigns": 3, "reassigns": 2, "confirms": 3},
        },
        follower_counters={
            "f00_00": {
                "rehomes": 1, "aborted_visits": 1,
                "assigns_taken": 3, "confirms_sent": 2,
            },
            "f00_01": {
                "rehomes": 1, "aborted_visits": 1,
                "assigns_taken": 2, "confirms_sent": 1,
            },
        },
    ),
    Case(
        # False-death rejoin: a follower goes silent long enough to be
        # dropped (channel torn down leader-side) but is still alive.
        # Its next heartbeat triggers the rejoin handshake — both
        # endpoints restart their sequence space together, and a later
        # assignment flows normally instead of deadlocking on mismatched
        # stream state.
        id="rejoin-after-false-death",
        followers=("f00_00",),
        script={
            2: [("pause", "f00_00")],
            18: [("resume", "f00_00")],
            19: [("detect", "lead00", "poi00001", (10.0, 10.0))],
            20: [("arrive", "f00_00")],
        },
        horizon=22,
        flow=[
            (19.0, "lead00", "f00_00", "assign", "poi00001", 1),
            (22.0, "f00_00", "lead00", "confirm", "poi00001", 22.0),
        ],
        ledger={
            "poi00001": task_dict(
                "poi00001", [10.0, 10.0], 19.0, TaskState.SERVICED, "lead00",
                attempts=1,
                assignments=[(19.0, "f00_00", 22.0, "confirmed")],
                t_serviced=22.0,
            ),
        },
        leader_counters={
            "lead00": {
                "follower_deaths": 1, "rejoins_sent": 1, "adoptions": 2,
                "assigns": 1, "confirms": 1,
            }
        },
        follower_counters={
            "f00_00": {
                "rejoins": 1, "rehomes": 1, "assigns_taken": 1,
                "confirms_sent": 1, "aborted_visits": 0,
            },
        },
    ),
]


@pytest.mark.parametrize("case", CASES, ids=[c.id for c in CASES])
def test_conformance(case: Case):
    harness = Harness(
        followers=case.followers,
        config=case.config,
        extra_leaders=case.extra_leaders,
        script=case.script,
    )
    harness.run(case.horizon)
    assert data_flow(harness) == case.flow
    assert harness.ledger.to_dict() == case.ledger
    for leader, expected in case.leader_counters.items():
        actual = {k: harness.leaders[leader].counters[k] for k in expected}
        assert actual == expected, f"{case.id}: {leader} counters"
    for fid, expected in case.follower_counters.items():
        actual = {k: harness.followers[fid].counters[k] for k in expected}
        assert actual == expected, f"{case.id}: {fid} counters"


def test_happy_path_wire_trace():
    """The full transport record — envelopes, acks, heartbeats — exactly."""
    harness = Harness(
        script={
            1: [("detect", "lead00", "poi00001", (10.0, 20.0))],
            3: [("arrive", "f00_00")],
        }
    )
    harness.run(6)
    assign = {
        "type": "assign", "task": "poi00001", "pos": [10.0, 20.0], "attempt": 1
    }
    confirm = {"type": "confirm", "task": "poi00001", "t_visit": 5.0}
    assert harness.trace == [
        (1.0, "/swarm/lead00/f00_00/data", {"seq": 0, "data": assign}),
        (1.0, "/swarm/lead00/f00_00/ack", {"seq": 0}),
        (1.0, "/swarm/hb/lead00", {"from": "f00_00", "t": 1.0}),
        (1.0, "/swarm/hb/lead00", {"from": "f00_01", "t": 1.0}),
        (5.0, "/swarm/f00_00/lead00/data", {"seq": 0, "data": confirm}),
        (5.0, "/swarm/f00_00/lead00/ack", {"seq": 0}),
        (6.0, "/swarm/hb/lead00", {"from": "f00_00", "t": 6.0}),
        (6.0, "/swarm/hb/lead00", {"from": "f00_01", "t": 6.0}),
    ]


def test_duplicate_assign_retransmit_is_idempotent():
    """A replayed assign is re-acked (lost-ack recovery) but not re-taken."""
    harness = Harness(
        script={1: [("detect", "lead00", "poi00001", (10.0, 20.0))]}
    )
    harness.run(2)
    harness.bus.publish(
        "/swarm/lead00/f00_00/data",
        {
            "seq": 0,
            "data": {
                "type": "assign", "task": "poi00001",
                "pos": [10.0, 20.0], "attempt": 1,
            },
        },
        sender="lead00",
    )
    follower = harness.followers["f00_00"]
    assert follower.state == FollowerState.ENROUTE
    assert follower.current_task == "poi00001"
    assert follower.counters["assigns_taken"] == 1
    assert follower.counters["busy_rejects"] == 0
    assert follower.channel.stats.duplicates == 1
    assert harness.ledger.get("poi00001").attempts == 1
    acks = [d for _, t, d in harness.trace if t == "/swarm/lead00/f00_00/ack"]
    assert acks == [{"seq": 0}, {"seq": 0}]


def test_duplicate_confirm_is_idempotent():
    """A second confirm for booked work counts as duplicate, changes nothing."""
    harness = Harness(
        script={
            1: [("detect", "lead00", "poi00001", (10.0, 20.0))],
            3: [("arrive", "f00_00")],
        }
    )
    harness.run(6)
    before = harness.ledger.to_dict()
    harness.followers["f00_00"].channel.send(
        {"type": "confirm", "task": "poi00001", "t_visit": 6.0}, 6.0
    )
    assert harness.leaders["lead00"].counters["duplicate_confirms"] == 1
    assert harness.ledger.to_dict() == before


def test_duplicate_ack_is_ignored():
    harness = Harness(
        script={1: [("detect", "lead00", "poi00001", (10.0, 20.0))]}
    )
    harness.run(2)
    channel = harness.leaders["lead00"].channel_for("f00_00")
    assert channel.stats.acked == 1
    assert channel.in_flight == 0
    harness.bus.publish("/swarm/lead00/f00_00/ack", {"seq": 0}, sender="f00_00")
    assert channel.stats.acked == 1
    assert channel.in_flight == 0


def test_stale_confirm_after_timeout_is_ignored():
    """A confirm racing its own timeout is counted, not double-booked."""
    harness = Harness(
        followers=("f00_00",),
        config=SwarmProtocolConfig(
            task_timeout_s=3.0, reassign_backoff_s=2.0, reassign_backoff_max_s=8.0
        ),
        script={
            1: [("detect", "lead00", "poi00001", (10.0, 10.0))],
            8: [("arrive", "f00_00")],
        },
    )
    harness.run(5)  # assign at t=1, timeout fires at t=5
    task = harness.ledger.get("poi00001")
    assert task.state == TaskState.PENDING
    assert task.owner is None
    harness.followers["f00_00"].channel.send(
        {"type": "confirm", "task": "poi00001", "t_visit": 5.0}, 5.0
    )
    assert harness.leaders["lead00"].counters["stale_confirms"] == 1
    assert task.state == TaskState.PENDING
    assert task.t_serviced is None
    harness.run(10)  # reassigned at t=7, arrival at 8, confirmed at 10
    assert task.state == TaskState.SERVICED
    assert task.attempts == 2
    assert [a.outcome for a in task.assignments] == ["timeout", "confirmed"]
    assert task.t_serviced == 10.0
