"""Unit tests for the flight recorder and the dynamic risk tracker."""

import numpy as np
import pytest

from repro.experiments.common import build_three_uav_world
from repro.middleware.rosbus import RosBus
from repro.platform.recorder import FlightRecorder, TelemetryRecord
from repro.sinadra.dynamic import DynamicRiskTracker
from repro.sinadra.risk import Criticality, SituationInputs


def record_short_flight():
    scenario = build_three_uav_world(seed=3, n_persons=0)
    world = scenario.world
    recorder = FlightRecorder(bus=world.bus)
    for uav_id in world.uavs:
        recorder.watch(uav_id)
    world.uavs["uav1"].start_mission([(80.0, 50.0, 20.0), (150.0, 50.0, 20.0)])
    for _ in range(200):
        world.step()
    return world, recorder


class TestFlightRecorder:
    def test_records_watched_uavs(self):
        world, recorder = record_short_flight()
        assert len(recorder.records["uav1"]) > 50
        # Idle UAVs still emit telemetry.
        assert len(recorder.records["uav2"]) > 50

    def test_kpis_flight_time_and_distance(self):
        world, recorder = record_short_flight()
        kpis = recorder.kpis("uav1")
        assert kpis.flight_time_s > 60.0
        # Flew at least out to the second waypoint and back toward base.
        assert kpis.distance_m > 150.0
        assert kpis.energy_used_fraction > 0.0
        assert 0.0 <= kpis.min_battery_soc <= 1.0

    def test_mode_occupancy_covers_mission(self):
        world, recorder = record_short_flight()
        kpis = recorder.kpis("uav1")
        assert "mission" in kpis.mode_occupancy_s
        assert kpis.mode_occupancy_s["mission"] > 10.0

    def test_kpis_require_data(self):
        recorder = FlightRecorder(bus=RosBus())
        with pytest.raises(ValueError):
            recorder.kpis("ghost")

    def test_track_matches_record_count(self):
        world, recorder = record_short_flight()
        assert len(recorder.track("uav1")) == len(recorder.records["uav1"])

    def test_jsonl_roundtrip(self):
        world, recorder = record_short_flight()
        text = recorder.export_jsonl("uav1")
        rebuilt = FlightRecorder.import_jsonl(RosBus(), "uav1", text)
        assert rebuilt.records["uav1"] == recorder.records["uav1"]
        assert rebuilt.kpis("uav1") == recorder.kpis("uav1")

    def test_record_json_roundtrip(self):
        record = TelemetryRecord(
            uav_id="u", stamp=1.5, mode="mission", east=1.0, north=2.0, up=3.0,
            battery_soc=0.8, battery_temp_c=30.0, gps_valid=True,
        )
        assert TelemetryRecord.from_json(record.to_json()) == record


def situation(uncertainty: float) -> SituationInputs:
    return SituationInputs(uncertainty, "high", "good", 0.3)


class TestDynamicRiskTracker:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DynamicRiskTracker(stickiness=0.3)
        with pytest.raises(ValueError):
            DynamicRiskTracker(observation_confusion=0.9)

    def test_persistent_high_risk_converges_to_high(self):
        tracker = DynamicRiskTracker()
        result = None
        for k in range(10):
            result = tracker.update(float(k), situation(0.95))
        assert result.regime is Criticality.HIGH
        assert result.rescan_recommended

    def test_single_spike_filtered_out(self):
        tracker = DynamicRiskTracker()
        for k in range(10):
            tracker.update(float(k), situation(0.2))
        spike = tracker.update(10.0, situation(0.95))
        # The instantaneous assessment spikes, the filtered regime holds.
        assert spike.instantaneous is Criticality.HIGH
        assert spike.regime is not Criticality.HIGH

    def test_sustained_elevation_eventually_flips(self):
        tracker = DynamicRiskTracker()
        for k in range(10):
            tracker.update(float(k), situation(0.2))
        regimes = []
        for k in range(10, 25):
            regimes.append(tracker.update(float(k), situation(0.95)).regime)
        assert regimes[-1] is Criticality.HIGH
        # It took more than one tick (hysteresis).
        assert regimes[0] is not Criticality.HIGH

    def test_posterior_is_distribution(self):
        tracker = DynamicRiskTracker()
        result = tracker.update(0.0, situation(0.7))
        assert sum(result.posterior.values()) == pytest.approx(1.0)
        assert all(p >= 0.0 for p in result.posterior.values())

    def test_recovery_after_descent(self):
        tracker = DynamicRiskTracker()
        for k in range(15):
            tracker.update(float(k), situation(0.95))
        assert tracker.history[-1].regime is Criticality.HIGH
        low = SituationInputs(0.2, "low", "good", 0.3)
        result = None
        for k in range(15, 40):
            result = tracker.update(float(k), low)
        assert result.regime is Criticality.LOW

    def test_reset(self):
        tracker = DynamicRiskTracker()
        for k in range(10):
            tracker.update(float(k), situation(0.95))
        tracker.reset()
        assert not tracker.history
        assert tracker.belief[0] == pytest.approx(1.0)
