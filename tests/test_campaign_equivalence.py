"""Serial-vs-parallel equivalence: the harness's core guarantee.

The same campaign run with 1 worker and with a pool must produce
identical manifests (deterministic subset) and sample-for-sample
identical results — the property that makes golden-trace pinning and
cached re-runs trustworthy.
"""

from __future__ import annotations

import pytest

import repro.harness.synthetic  # noqa: F401  (registers "synthetic")
from repro.experiments.monte_carlo import MONTE_CARLO_CAMPAIGN, result_from_campaign
from repro.harness.campaign import run_campaign
from repro.harness.manifest import deterministic_view


class TestSyntheticEquivalence:
    """Full 64-point grid, real pool fan-out."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_campaign("synthetic", grid="default", root_seed=123, workers=1)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_campaign("synthetic", grid="default", root_seed=123, workers=4)

    def test_fingerprints_identical(self, serial, parallel):
        assert serial.fingerprint == parallel.fingerprint

    def test_sample_for_sample_identical(self, serial, parallel):
        assert serial.results == parallel.results
        for a, b in zip(serial.records, parallel.records):
            assert a.index == b.index
            assert a.seed == b.seed
            assert a.config == b.config

    def test_deterministic_manifests_identical(self, serial, parallel):
        assert deterministic_view(serial.manifest) == deterministic_view(
            parallel.manifest
        )

    def test_parallel_run_used_pool_workers(self, parallel):
        workers = {record.worker for record in parallel.records}
        assert len(workers) > 1, f"expected pool fan-out, got {workers}"


class TestMonteCarloEquivalence:
    """The acceptance-criterion experiment, on the smoke grid."""

    def test_workers_1_and_4_agree(self):
        serial = run_campaign(
            MONTE_CARLO_CAMPAIGN, grid="smoke", root_seed=0, workers=1
        )
        parallel = run_campaign(
            MONTE_CARLO_CAMPAIGN, grid="smoke", root_seed=0, workers=4
        )
        assert serial.fingerprint == parallel.fingerprint
        assert serial.results == parallel.results
        a = result_from_campaign(serial)
        b = result_from_campaign(parallel)
        assert a.samples == b.samples
        assert a.mean_advantage == b.mean_advantage

    def test_legacy_api_serial_parallel_agree(self):
        from repro.experiments.monte_carlo import run_monte_carlo_fig5

        kwargs = dict(fault_times=(250.0,), soc_levels=(0.40,), seeds=(3, 7))
        assert (
            run_monte_carlo_fig5(workers=1, **kwargs).samples
            == run_monte_carlo_fig5(workers=2, **kwargs).samples
        )
