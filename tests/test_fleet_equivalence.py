"""Differential suite: the vectorized fleet engine vs the scalar reference.

The vectorized engine (:mod:`repro.uav.fleet`) promises *bit-identical*
trajectories to the scalar per-UAV step — not "close enough", identical.
These tests run the same scenario through both engines side by side and
compare per-step state: positions, believed positions, battery SoC and
temperature, flight modes, and SAR detection events.

The acceptance contract is a 1e-9 tolerance on continuous state; the
engines actually deliver exact equality, which the scenario sweep
asserts (``tol=0.0``) so any future divergence — even one ULP — fails
loudly rather than eroding toward the tolerance.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.experiments.common import build_three_uav_world
from repro.sar.mission import SarMission
from repro.scenario import load_scenario_json

SCENARIO_DIR = Path(__file__).parent.parent / "scenarios"
SCENARIOS = sorted(SCENARIO_DIR.glob("*.json"))

#: The contract from the issue: continuous state within 1e-9.
TOL = 1e-9

#: Long enough to cross every shipped scenario's fault/attack window
#: (latest onset is the 250 s battery collapse in fig5_battery_fault).
T_END = 320.0


def _fleet_state(world) -> dict:
    """One comparable snapshot of every UAV's continuous + discrete state."""
    state = {}
    for uav_id, uav in world.uavs.items():
        believed = (
            tuple(uav.believed_trajectory[-1])
            if uav.believed_trajectory
            else None
        )
        state[uav_id] = {
            "position": tuple(uav.dynamics.position),
            "velocity": tuple(uav.dynamics.velocity),
            "believed": believed,
            "soc": uav.battery.soc,
            "temp_c": uav.battery.temp_c,
            "mode": uav.mode,
        }
    return state


def _assert_states_close(a: dict, b: dict, tol: float, where: str) -> None:
    assert set(a) == set(b), f"{where}: fleet membership differs"
    for uav_id in a:
        sa, sb = a[uav_id], b[uav_id]
        assert sa["mode"] is sb["mode"], (
            f"{where} {uav_id}: mode {sa['mode']} != {sb['mode']}"
        )
        for key in ("position", "velocity", "believed"):
            va, vb = sa[key], sb[key]
            if va is None or vb is None:
                assert va == vb, f"{where} {uav_id}: {key} {va} != {vb}"
                continue
            for ca, cb in zip(va, vb):
                assert abs(ca - cb) <= tol, (
                    f"{where} {uav_id}: {key} {va} != {vb}"
                )
        for key in ("soc", "temp_c"):
            assert abs(sa[key] - sb[key]) <= tol, (
                f"{where} {uav_id}: {key} {sa[key]} != {sb[key]}"
            )


@pytest.mark.parametrize(
    "scenario_path", SCENARIOS, ids=[p.stem for p in SCENARIOS]
)
def test_scenarios_bit_identical_across_engines(scenario_path):
    """Every shipped scenario, stepped in lockstep through both engines.

    Runs well past every fault onset (battery collapse, GPS denial and
    spoofing, camera degradation, wind) and demands exact equality at
    every step — the engines share no state, only the same seeds.
    """
    text = scenario_path.read_text()
    scalar = load_scenario_json(text, engine="scalar")
    vector = load_scenario_json(text, engine="vectorized")
    assert scalar.world.engine == "scalar"
    assert vector.world.engine == "vectorized"

    steps = int(round(T_END / scalar.world.dt))
    for step in range(steps):
        ta = scalar.step()
        tb = vector.step()
        assert ta == tb
        _assert_states_close(
            _fleet_state(scalar.world),
            _fleet_state(vector.world),
            tol=0.0,
            where=f"{scenario_path.stem} t={ta}",
        )


def test_scenarios_exercise_mid_run_faults():
    """Meta-check: the sweep above actually crosses fault activations."""
    covered = set()
    for path in SCENARIOS:
        config = json.loads(path.read_text())
        for fault in config.get("faults", ()):
            if float(fault["at"]) < T_END:
                covered.add(fault["type"])
    assert {"battery_collapse", "gps_denial", "gps_spoof"} <= covered, (
        f"scenario sweep only covers {sorted(covered)}"
    )


def test_windy_scenario_has_environment_drift():
    """Meta-check: the sweep exercises the wind-drift path in both engines."""
    configs = [json.loads(p.read_text()) for p in SCENARIOS]
    assert any("environment" in c for c in configs)


@pytest.mark.parametrize("n_uavs", [1, 10])
def test_sar_mission_detections_identical(n_uavs):
    """Full coverage missions agree on every detection event.

    Detection draws come from the world generator, which neither engine
    touches during stepping, so who found whom — and exactly when — must
    match to the bit.
    """
    runs = {}
    for engine in ("scalar", "vectorized"):
        scenario = build_three_uav_world(
            seed=21, n_persons=8, n_uavs=n_uavs, engine=engine
        )
        mission = SarMission(world=scenario.world)
        mission.assign_paths()
        metrics = mission.run(max_time_s=500.0)
        runs[engine] = (
            [
                (p.person_id, p.detected_by, p.detected_at)
                for p in scenario.world.persons
                if p.detected
            ],
            metrics.coverage_fraction,
            metrics.duration_s,
            _fleet_state(scenario.world),
        )
    scalar_run, vector_run = runs["scalar"], runs["vectorized"]
    assert scalar_run[0] == vector_run[0]  # detection events, bit for bit
    assert scalar_run[1] == vector_run[1]
    assert scalar_run[2] == vector_run[2]
    _assert_states_close(scalar_run[3], vector_run[3], tol=0.0, where="final")


def test_telemetry_streams_identical():
    """Both engines put the same telemetry on the bus, message for message.

    The vectorized engine batches construction and publishing
    (``RosBus.publish_many``); subscribers and the traffic log must not
    be able to tell. Compares topic, sender, seq, stamp, and the full
    fix/velocity payload of every recorded message.
    """

    def run(engine: str):
        scenario = build_three_uav_world(
            seed=7, n_persons=0, n_uavs=3, engine=engine
        )
        world = scenario.world
        for uav in world.uavs.values():
            uav.start_mission([(100.0, 80.0, 20.0), (200.0, 120.0, 20.0)])
        world.uavs["uav2"].sensors.gps.denied = True  # invalid-fix path
        for _ in range(80):
            world.step()
        return [
            (
                m.topic,
                m.sender,
                m.seq,
                m.stamp,
                m.data.position if hasattr(m.data, "position") else None,
                m.data.imu_velocity if hasattr(m.data, "imu_velocity") else None,
                (
                    (m.data.fix.valid, m.data.fix.num_satellites, m.data.fix.hdop,
                     m.data.fix.point.lat, m.data.fix.point.lon, m.data.fix.point.alt)
                    if hasattr(m.data, "fix")
                    else None
                ),
            )
            for m in world.bus.traffic
        ]

    assert run("scalar") == run("vectorized")


def test_engine_flag_round_trips_through_scenario_config():
    """The JSON ``"engine"`` key and the override argument both work."""
    config = {
        "seed": 1,
        "uavs": [{"id": "uav1", "base": [0, 0, 0]}],
        "engine": "vectorized",
    }
    assert load_scenario_json(json.dumps(config)).world.engine == "vectorized"
    assert (
        load_scenario_json(json.dumps(config), engine="scalar").world.engine
        == "scalar"
    )


def test_mid_flight_displacement_agrees_under_wind():
    """Airborne wind drift (environment set) is applied identically."""
    text = (SCENARIO_DIR / "windy_night_sar.json").read_text()
    scalar = load_scenario_json(text, engine="scalar")
    vector = load_scenario_json(text, engine="vectorized")
    for uav in scalar.world.uavs.values():
        uav.start_mission([(150.0, 150.0, 25.0)])
    for uav in vector.world.uavs.values():
        uav.start_mission([(150.0, 150.0, 25.0)])
    moved = 0.0
    for _ in range(200):
        scalar.step()
        vector.step()
        for uav_id, uav in scalar.world.uavs.items():
            peer = vector.world.uavs[uav_id]
            assert uav.dynamics.position == peer.dynamics.position
            moved = max(
                moved, math.dist(uav.dynamics.position, uav.spec.base_position)
            )
    assert moved > 10.0  # the fleet actually flew somewhere
