"""Tests for the Fig. 4 demo, the map view, the CLI, and motor failures."""

import pytest

from repro.__main__ import main as cli_main
from repro.core.decider import MissionVerdict
from repro.experiments.common import build_three_uav_world
from repro.experiments.fig4_platform import run_fig4_platform_demo
from repro.platform.map_view import MapView
from repro.safedrones.monitor import ReliabilityLevel, SafeDronesMonitor
from repro.uav.faults import FaultSchedule, motor_failure


class TestMapView:
    def test_renders_frame_and_legend(self):
        scenario = build_three_uav_world(seed=1, n_persons=3)
        text = MapView(width=40, height=10).render(scenario.world)
        lines = text.splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        assert len(lines) == 12 + 1  # frame + rows + legend
        assert "person found" in lines[-1]

    def test_persons_marked(self):
        scenario = build_three_uav_world(seed=1, n_persons=4)
        world = scenario.world
        world.persons[0].detected = True
        text = MapView().render(world)
        assert "O" in text  # found person
        assert "x" in text  # missing persons

    def test_tracks_drawn_after_flight(self):
        scenario = build_three_uav_world(seed=1, n_persons=0)
        world = scenario.world
        world.uavs["uav1"].start_mission([(50.0, 250.0, 20.0)])
        for _ in range(80):
            world.step()
        text = MapView().render(world)
        assert "1" in text  # uav1's track glyph

    def test_out_of_area_positions_skipped(self):
        scenario = build_three_uav_world(seed=1, n_persons=0)
        world = scenario.world
        # Bases are south of the area (north < 0); rendering must not fail.
        text = MapView().render(world)
        assert text


class TestFig4Demo:
    @pytest.fixture(scope="class")
    def fig4(self):
        return run_fig4_platform_demo(seed=42, n_persons=6, max_time_s=800.0)

    def test_mission_succeeds(self, fig4):
        assert fig4.metrics.persons_found >= 4
        assert fig4.metrics.coverage_fraction > 0.8

    def test_all_panels_render(self, fig4):
        text = fig4.render()
        assert "MISSION:" in text
        assert "BATT" in text
        assert "person found" in text

    def test_healthy_demo_verdict(self, fig4):
        assert fig4.decision.verdict is MissionVerdict.AS_PLANNED


class TestCli:
    def test_list_command(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig4", "fig5", "fig6", "fig7", "sar-accuracy", "conserts"):
            assert name in out

    def test_conserts_command(self, capsys):
        assert cli_main(["conserts"]) == 0
        out = capsys.readouterr().out
        assert "mission_completed_as_planned" in out
        assert out.count("\n") == 24

    def test_fig7_command(self, capsys):
        assert cli_main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "landed" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["nope"])


class TestMotorFailureIntegration:
    def test_fault_increments_counter(self):
        scenario = build_three_uav_world(seed=2, n_persons=0)
        world = scenario.world
        schedule = FaultSchedule()
        schedule.add(motor_failure("uav1", at_time=3.0))
        while world.time < 5.0:
            world.step()
            schedule.step(world.time, world.uavs)
        assert world.uavs["uav1"].motors_failed == 1

    def test_monitor_syncs_motor_state_quad(self):
        # A quadrotor with one motor out is uncontrollable: PoF -> 1.
        monitor = SafeDronesMonitor(uav_id="u", rotor_count=4)
        assessment = monitor.update(0.0, 0.9, 25.0, motors_failed=1)
        assert assessment.propulsion_pof == 1.0
        assert assessment.level is ReliabilityLevel.LOW
        assert assessment.abort_recommended

    def test_monitor_syncs_motor_state_hexa(self):
        # A hexarotor tolerates one failure: elevated but not fatal.
        monitor = SafeDronesMonitor(uav_id="u", rotor_count=6)
        clean = monitor.update(0.0, 0.9, 25.0, motors_failed=0)
        degraded = monitor.update(1.0, 0.9, 25.0, motors_failed=1)
        assert degraded.propulsion_pof > clean.propulsion_pof
        assert degraded.propulsion_pof < 0.5

    def test_sync_is_monotonic(self):
        monitor = SafeDronesMonitor(uav_id="u", rotor_count=8)
        monitor.update(0.0, 0.9, 25.0, motors_failed=2)
        # Reporting a lower count later must not resurrect motors.
        monitor.update(1.0, 0.9, 25.0, motors_failed=1)
        assert monitor.propulsion.motors_failed == 2


class TestExamplesCompile:
    """Every shipped example must at least be valid Python."""

    def test_all_examples_compile(self):
        import pathlib
        import py_compile

        examples = sorted(
            (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
        )
        assert len(examples) >= 6
        for path in examples:
            py_compile.compile(str(path), doraise=True)
