"""Unit tests for SafeML: ECDF, distances, p-values, and the monitor."""

import numpy as np
import pytest

from repro.safeml.distances import (
    ALL_MEASURES,
    anderson_darling_distance,
    cramer_von_mises_distance,
    dts_distance,
    kolmogorov_smirnov_distance,
    kuiper_distance,
    wasserstein_distance,
)
from repro.safeml.ecdf import Ecdf, ecdf_pair
from repro.safeml.monitor import ConfidenceLevel, SafeMlMonitor
from repro.safeml.pvalue import permutation_pvalue


class TestEcdf:
    def test_step_values(self):
        e = Ecdf.from_sample(np.array([1.0, 2.0, 3.0]))
        assert e.evaluate(np.array([0.5]))[0] == 0.0
        assert e.evaluate(np.array([1.0]))[0] == pytest.approx(1 / 3)
        assert e.evaluate(np.array([2.5]))[0] == pytest.approx(2 / 3)
        assert e.evaluate(np.array([3.0]))[0] == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Ecdf.from_sample(np.array([]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Ecdf.from_sample(np.array([1.0, np.nan]))

    def test_callable(self):
        e = Ecdf.from_sample(np.array([1.0, 2.0]))
        assert e(np.array([1.5]))[0] == 0.5

    def test_pair_on_pooled_grid(self):
        grid, fa, fb = ecdf_pair(np.array([1.0, 2.0]), np.array([3.0]))
        assert grid.tolist() == [1.0, 2.0, 3.0]
        assert fa.tolist() == [0.5, 1.0, 1.0]
        assert fb.tolist() == [0.0, 0.0, 1.0]


RNG = np.random.default_rng(42)
SAME_A = RNG.normal(0.0, 1.0, 400)
SAME_B = RNG.normal(0.0, 1.0, 400)
SHIFTED = RNG.normal(2.0, 1.0, 400)


class TestDistanceMeasures:
    @pytest.mark.parametrize("name,fn", sorted(ALL_MEASURES.items()))
    def test_nonnegative(self, name, fn):
        assert fn(SAME_A, SAME_B) >= 0.0

    @pytest.mark.parametrize("name,fn", sorted(ALL_MEASURES.items()))
    def test_symmetric(self, name, fn):
        assert fn(SAME_A, SHIFTED) == pytest.approx(fn(SHIFTED, SAME_A), rel=1e-9)

    @pytest.mark.parametrize("name,fn", sorted(ALL_MEASURES.items()))
    def test_detects_mean_shift(self, name, fn):
        assert fn(SAME_A, SHIFTED) > 3.0 * fn(SAME_A, SAME_B)

    @pytest.mark.parametrize("name,fn", sorted(ALL_MEASURES.items()))
    def test_identical_samples_near_zero(self, name, fn):
        assert fn(SAME_A, SAME_A) == pytest.approx(0.0, abs=1e-12)

    def test_ks_bounded_by_one(self):
        assert kolmogorov_smirnov_distance(SAME_A, SHIFTED + 100.0) <= 1.0

    def test_kuiper_at_least_ks(self):
        assert kuiper_distance(SAME_A, SHIFTED) >= kolmogorov_smirnov_distance(
            SAME_A, SHIFTED
        ) - 1e-12

    def test_wasserstein_equals_mean_shift(self):
        # For a pure location shift the W1 distance is the shift itself.
        a = RNG.normal(0.0, 1.0, 3000)
        b = a + 1.5
        assert wasserstein_distance(a, b) == pytest.approx(1.5, rel=0.02)

    def test_cvm_bounded(self):
        assert 0.0 <= cramer_von_mises_distance(SAME_A, SHIFTED) <= 1.0

    def test_ad_emphasises_tails(self):
        # Tail-only contamination moves AD more than CVM, relatively.
        a = RNG.normal(0.0, 1.0, 500)
        tail = np.concatenate([RNG.normal(0.0, 1.0, 475), RNG.normal(8.0, 0.5, 25)])
        ad_ratio = anderson_darling_distance(a, tail) / (
            anderson_darling_distance(SAME_A, SAME_B) + 1e-12
        )
        cvm_ratio = cramer_von_mises_distance(a, tail) / (
            cramer_von_mises_distance(SAME_A, SAME_B) + 1e-12
        )
        assert ad_ratio > cvm_ratio * 0.5  # AD is at least comparably sensitive

    def test_dts_grows_with_shift_magnitude(self):
        shifts = [0.0, 0.5, 1.0, 2.0]
        values = [dts_distance(SAME_A, SAME_A + s) for s in shifts]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestPermutationPvalue:
    def test_null_gives_large_pvalue(self):
        _, p = permutation_pvalue(
            SAME_A[:80], SAME_B[:80], kolmogorov_smirnov_distance, 100,
            rng=np.random.default_rng(1),
        )
        assert p > 0.05

    def test_shift_gives_small_pvalue(self):
        _, p = permutation_pvalue(
            SAME_A[:80], SHIFTED[:80], kolmogorov_smirnov_distance, 100,
            rng=np.random.default_rng(1),
        )
        assert p < 0.05

    def test_pvalue_in_unit_interval(self):
        _, p = permutation_pvalue(
            SAME_A[:30], SAME_B[:30], wasserstein_distance, 50,
            rng=np.random.default_rng(2),
        )
        assert 0.0 < p <= 1.0

    def test_rejects_zero_permutations(self):
        with pytest.raises(ValueError):
            permutation_pvalue(SAME_A, SAME_B, kolmogorov_smirnov_distance, 0)


class TestConfidenceLevel:
    def test_mapping(self):
        assert ConfidenceLevel.from_uncertainty(0.2) is ConfidenceLevel.HIGH
        assert ConfidenceLevel.from_uncertainty(0.8) is ConfidenceLevel.MEDIUM
        assert ConfidenceLevel.from_uncertainty(0.95) is ConfidenceLevel.LOW

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ConfidenceLevel.from_uncertainty(-0.1)


def make_fitted_monitor(window=30, z_scale=3.0, n_features=3, seed=0):
    rng = np.random.default_rng(seed)
    monitor = SafeMlMonitor(
        window_size=window, z_scale=z_scale, rng=np.random.default_rng(seed + 1)
    )
    monitor.fit(rng.normal(0.0, 1.0, size=(400, n_features)))
    return monitor, rng


class TestSafeMlMonitor:
    def test_rejects_unknown_measure(self):
        with pytest.raises(ValueError):
            SafeMlMonitor(measure="nope")

    def test_requires_fit_before_observe(self):
        monitor = SafeMlMonitor()
        with pytest.raises(RuntimeError):
            monitor.observe(np.zeros(3))

    def test_requires_samples_before_report(self):
        monitor, _ = make_fitted_monitor()
        with pytest.raises(RuntimeError):
            monitor.report()

    def test_rejects_small_reference(self):
        monitor = SafeMlMonitor(window_size=100)
        with pytest.raises(ValueError):
            monitor.fit(np.zeros((50, 2)))

    def test_rejects_wrong_feature_dim(self):
        monitor, _ = make_fitted_monitor(n_features=3)
        with pytest.raises(ValueError):
            monitor.observe(np.zeros(5))

    def test_in_distribution_is_uncertain_about_half(self):
        monitor, rng = make_fitted_monitor()
        for _ in range(30):
            monitor.observe(rng.normal(0.0, 1.0, 3))
        report = monitor.report()
        assert 0.1 < report.uncertainty < 0.9

    def test_shift_raises_uncertainty(self):
        monitor, rng = make_fitted_monitor()
        for _ in range(30):
            monitor.observe(rng.normal(4.0, 1.0, 3))
        report = monitor.report()
        assert report.uncertainty > 0.95
        assert report.level is ConfidenceLevel.LOW

    def test_window_slides(self):
        monitor, rng = make_fitted_monitor()
        for _ in range(30):
            monitor.observe(rng.normal(4.0, 1.0, 3))
        shifted_u = monitor.report().uncertainty
        for _ in range(30):  # window fully replaced with in-distribution data
            monitor.observe(rng.normal(0.0, 1.0, 3))
        recovered_u = monitor.report().uncertainty
        assert recovered_u < shifted_u

    def test_window_full_flag(self):
        monitor, rng = make_fitted_monitor(window=5)
        assert not monitor.window_full
        for _ in range(5):
            monitor.observe(rng.normal(0.0, 1.0, 3))
        assert monitor.window_full

    def test_confidence_complements_uncertainty(self):
        monitor, rng = make_fitted_monitor()
        monitor.observe(rng.normal(0.0, 1.0, 3))
        report = monitor.report()
        assert report.confidence == pytest.approx(1.0 - report.uncertainty)

    def test_z_scale_softens_response(self):
        sharp, rng = make_fitted_monitor(z_scale=1.0, seed=3)
        soft, _ = make_fitted_monitor(z_scale=50.0, seed=3)
        sample = rng.normal(1.0, 1.0, size=(30, 3))
        for row in sample:
            sharp.observe(row)
            soft.observe(row)
        assert soft.report().uncertainty < sharp.report().uncertainty
