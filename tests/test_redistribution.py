"""Unit tests for task redistribution among remaining capable UAVs."""

import pytest

from repro.experiments.common import build_three_uav_world
from repro.sar.redistribution import TaskRedistributor
from repro.uav.uav import FlightMode


def setup_fleet(seed=0):
    scenario = build_three_uav_world(seed=seed, n_persons=0)
    world = scenario.world
    dropped = world.uavs["uav1"]
    takeover = [world.uavs["uav2"], world.uavs["uav3"]]
    dropped.start_mission(
        [(60.0 * i, 50.0, 20.0) for i in range(10)]
    )
    # Fly a little so some waypoints are already done.
    for _ in range(60):
        world.step()
    return world, dropped, takeover


class TestTaskRedistributor:
    def test_remaining_waypoints_excludes_done(self):
        world, dropped, takeover = setup_fleet()
        remaining = TaskRedistributor.remaining_waypoints(dropped)
        assert 0 < len(remaining) < 10

    def test_plan_covers_all_remaining_waypoints(self):
        world, dropped, takeover = setup_fleet()
        remaining = TaskRedistributor.remaining_waypoints(dropped)
        assignments = TaskRedistributor().plan(dropped, takeover)
        planned = [wp for a in assignments for wp in a.waypoints]
        assert planned == remaining

    def test_plan_assigns_only_to_takeover_uavs(self):
        world, dropped, takeover = setup_fleet()
        assignments = TaskRedistributor().plan(dropped, takeover)
        valid = {u.spec.uav_id for u in takeover}
        assert all(a.to_uav in valid for a in assignments)
        assert all(a.from_uav == "uav1" for a in assignments)

    def test_plan_does_not_mutate(self):
        world, dropped, takeover = setup_fleet()
        before = [list(u.plan.waypoints) for u in takeover]
        TaskRedistributor().plan(dropped, takeover)
        after = [list(u.plan.waypoints) for u in takeover]
        assert before == after

    def test_empty_remaining_yields_no_assignments(self):
        world, dropped, takeover = setup_fleet()
        dropped.plan.index = len(dropped.plan.waypoints)
        assert TaskRedistributor().plan(dropped, takeover) == []

    def test_requires_takeover_uavs(self):
        world, dropped, _ = setup_fleet()
        with pytest.raises(ValueError):
            TaskRedistributor().plan(dropped, [])

    def test_execute_starts_idle_takeover_uavs(self):
        world, dropped, takeover = setup_fleet()
        assignments = TaskRedistributor().execute(dropped, takeover)
        assert assignments
        used = {a.to_uav for a in assignments}
        for uav in takeover:
            if uav.spec.uav_id in used:
                assert uav.mode is FlightMode.MISSION
                assert uav.plan.waypoints

    def test_execute_appends_to_active_missions(self):
        world, dropped, takeover = setup_fleet()
        for uav in takeover:
            uav.start_mission([(200.0, 200.0, 20.0)])
        before = {u.spec.uav_id: len(u.plan.waypoints) for u in takeover}
        assignments = TaskRedistributor().execute(dropped, takeover)
        for assignment in assignments:
            uav = next(u for u in takeover if u.spec.uav_id == assignment.to_uav)
            assert len(uav.plan.waypoints) == before[uav.spec.uav_id] + len(
                assignment.waypoints
            )

    def test_max_segments_bounds_fragmentation(self):
        world, dropped, takeover = setup_fleet()
        assignments = TaskRedistributor(max_segments=1).plan(dropped, takeover)
        assert len(assignments) == 1

    def test_redistributed_mission_completes(self):
        world, dropped, takeover = setup_fleet()
        dropped.command_mode(FlightMode.RETURN_TO_BASE)
        TaskRedistributor().execute(dropped, takeover)
        for _ in range(2000):
            world.step()
            if all(u.plan.complete for u in takeover):
                break
        assert all(u.plan.complete for u in takeover)
