"""Unit tests for the EDDI runtime loop, ODE packaging, assurance cases."""

import json

import pytest

from repro.core.assurance import AssuranceCase, Goal, Solution, Strategy
from repro.core.conserts import AndNode, ConSert, Guarantee, RuntimeEvidence
from repro.core.eddi import Eddi, MonitorAdapter
from repro.core.ode import OdePackage, consert_from_dict, conserts_to_dict
from repro.core.uav_network import UavConSertNetwork, UavGuarantee
from repro.security.attack_trees import ros_spoofing_attack_tree


def make_eddi():
    network = UavConSertNetwork(uav_id="uav1")
    network.set_reliability_level("high")
    return Eddi(name="uav1-eddi", network=network), network


class TestEddiRuntime:
    def test_step_runs_adapters_then_evaluates(self):
        eddi, network = make_eddi()
        calls = []
        eddi.add_adapter(MonitorAdapter("m", lambda now: calls.append(now)))
        guarantee = eddi.step(1.0)
        assert calls == [1.0]
        assert guarantee is UavGuarantee.CONTINUE_MISSION_EXTRA

    def test_adapter_can_change_evidence(self):
        eddi, network = make_eddi()
        eddi.add_adapter(
            MonitorAdapter(
                "rel",
                lambda now: network.set_reliability_level(
                    "medium" if now > 5.0 else "high"
                ),
            )
        )
        assert eddi.step(1.0) is UavGuarantee.CONTINUE_MISSION_EXTRA
        assert eddi.step(6.0) is UavGuarantee.CONTINUE_MISSION

    def test_response_fires_on_change_only(self):
        eddi, network = make_eddi()
        fired = []
        eddi.on_guarantee(UavGuarantee.RETURN_TO_BASE, fired.append)
        eddi.step(1.0)
        network.set_reliability_level("low")
        eddi.step(2.0)
        eddi.step(3.0)  # unchanged -> no second firing
        assert len(fired) == 1
        assert fired[0].guarantee is UavGuarantee.RETURN_TO_BASE
        assert fired[0].previous is UavGuarantee.CONTINUE_MISSION_EXTRA

    def test_response_log_records_transitions(self):
        eddi, network = make_eddi()
        eddi.step(1.0)
        network.set_reliability_level("medium")
        eddi.step(2.0)
        network.set_reliability_level("high")
        eddi.step(3.0)
        assert [r.guarantee for r in eddi.response_log] == [
            UavGuarantee.CONTINUE_MISSION_EXTRA,
            UavGuarantee.CONTINUE_MISSION,
            UavGuarantee.CONTINUE_MISSION_EXTRA,
        ]

    def test_time_in_guarantee(self):
        eddi, network = make_eddi()
        for t in range(0, 10):
            eddi.step(float(t))
        network.set_reliability_level("medium")
        for t in range(10, 15):
            eddi.step(float(t))
        assert eddi.time_in_guarantee(UavGuarantee.CONTINUE_MISSION_EXTRA) == pytest.approx(10.0)
        assert eddi.time_in_guarantee(UavGuarantee.CONTINUE_MISSION) == pytest.approx(4.0)


class TestOdePackage:
    def simple_consert(self):
        return ConSert(
            name="c",
            guarantees=[
                Guarantee("ok", AndNode([RuntimeEvidence("e", False, "desc")])),
                Guarantee("fallback", None),
            ],
        )

    def test_consert_roundtrip(self):
        original = self.simple_consert()
        data = conserts_to_dict(original)
        rebuilt = consert_from_dict(data)
        assert rebuilt.name == "c"
        assert rebuilt.guarantee_names() == ["ok", "fallback"]
        # Evidence defaults to False; the default guarantee is offered.
        assert rebuilt.evaluate().name == "fallback"
        rebuilt.evidence_by_name("e").set(True)
        assert rebuilt.evaluate().name == "ok"

    def test_package_json_roundtrip(self):
        package = OdePackage(system_name="uav", metadata={"author": "sesame"})
        package.add_consert(self.simple_consert())
        package.add_attack_tree(ros_spoofing_attack_tree())
        restored = OdePackage.from_json(package.to_json())
        assert restored.system_name == "uav"
        assert restored.metadata["author"] == "sesame"
        assert len(restored.conserts) == 1
        trees = restored.instantiate_attack_trees()
        assert trees[0].name == "ros_message_spoofing"

    def test_package_json_is_valid_json(self):
        package = OdePackage(system_name="uav")
        package.add_consert(self.simple_consert())
        parsed = json.loads(package.to_json())
        assert parsed["system"] == "uav"

    def test_demand_rebinding_across_package(self):
        provider = ConSert(
            name="provider",
            guarantees=[Guarantee("service_ok", None)],
        )
        from repro.core.conserts import Demand

        consumer = ConSert(
            name="consumer",
            guarantees=[
                Guarantee(
                    "ok",
                    AndNode(
                        [Demand("d", frozenset({"service_ok"}), providers=[provider])]
                    ),
                ),
                Guarantee("fallback", None),
            ],
        )
        package = OdePackage(system_name="s")
        package.add_consert(provider)
        package.add_consert(consumer)
        instantiated = OdePackage.from_json(package.to_json()).instantiate_conserts()
        assert instantiated["consumer"].evaluate().name == "ok"

    def test_full_uav_network_serialises(self):
        network = UavConSertNetwork(uav_id="uav1")
        package = OdePackage(system_name="uav1")
        for consert in (
            network.security,
            network.gps_localization,
            network.vision_health,
            network.vision_localization,
            network.comm_localization,
            network.drone_detection,
            network.reliability,
            network.navigation,
            network.uav,
        ):
            package.add_consert(consert)
        restored = OdePackage.from_json(package.to_json()).instantiate_conserts()
        assert len(restored) == 9
        # Default evidence is False -> the rebuilt top-level UAV ConSert
        # falls back to emergency landing, its unconditional default.
        assert restored["uav1/uav"].evaluate().name == "emergency_land"


class TestAssuranceCase:
    def build_case(self, live_flag):
        root = Goal("G1", "UAV mission is acceptably safe")
        strategy = root.add_strategy(
            Strategy("S1", "argue over hazards individually")
        )
        battery = strategy.add_goal(Goal("G2", "battery failure is managed"))
        battery.add_solution(
            Solution("Sn1", "SafeDrones PoF below threshold", check=lambda: live_flag["ok"])
        )
        spoof = strategy.add_goal(Goal("G3", "spoofing is detected and mitigated"))
        spoof.add_solution(Solution("Sn2", "Security EDDI detection evidence"))
        return AssuranceCase(name="uav-case", root=root)

    def test_complete_case_evaluates_true(self):
        case = self.build_case({"ok": True})
        assert case.is_complete()
        assert case.evaluate()

    def test_live_evidence_failure_fails_root(self):
        flag = {"ok": True}
        case = self.build_case(flag)
        flag["ok"] = False
        assert not case.evaluate()

    def test_undeveloped_goal_detected(self):
        case = self.build_case({"ok": True})
        case.root.strategies[0].add_goal(Goal("G4", "comms are secure"))
        assert not case.is_complete()
        assert [g.goal_id for g in case.undeveloped_goals()] == ["G4"]
        assert not case.evaluate()

    def test_render_contains_status(self):
        case = self.build_case({"ok": True})
        text = case.render()
        assert "G1" in text and "OK" in text
        assert "Sn1" in text

    def test_goal_with_only_solutions_is_developed(self):
        goal = Goal("G", "claim")
        goal.add_solution(Solution("S", "evidence"))
        assert goal.developed
        assert goal.supported()

    def test_strategy_without_subgoals_unsupported(self):
        goal = Goal("G", "claim")
        goal.add_strategy(Strategy("S", "argument"))
        assert not goal.supported()
