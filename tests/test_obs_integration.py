"""Integration tests: obs wired through the bus, EDDI, campaign, and CLI."""

import json
import multiprocessing
from collections import Counter
from pathlib import Path

import pytest

from repro import obs
from repro.__main__ import main
from repro.core.adapters import build_uav_eddi
from repro.harness.campaign import (
    CampaignExperiment,
    register_experiment,
    run_campaign,
)
from repro.middleware.degraded import DegradedBus, LinkModel
from repro.middleware.rosbus import RosBus
from repro.scenario import load_scenario_json

SCENARIOS = Path(__file__).resolve().parent.parent / "scenarios"

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def _clean_session():
    obs.reset()
    yield
    obs.reset()


class TestBusMetricsAgreement:
    """bus_published_total and the IDS traffic log must count the same."""

    def test_spoofing_scenario_counts_agree_per_topic(self):
        config = json.loads((SCENARIOS / "spoofing_attack.json").read_text())
        with obs.isolated(enabled=True) as session:
            scenario = load_scenario_json(json.dumps(config))
            scenario.run_until(90.0)
            counters = session.metrics.counter_series("bus_published_total")
        by_topic = Counter(m.topic for m in scenario.world.bus.traffic)
        assert counters == {
            f"topic={topic}": float(n) for topic, n in by_topic.items()
        }
        # The attack window (60..90 s at 5 Hz) put forged traffic on the
        # log, so the agreement covers adversarial publishes too.
        assert any(m.is_forged for m in scenario.world.bus.traffic)

    def test_interceptor_drop_counts_once_and_skips_traffic_log(self):
        bus = RosBus()
        got = []
        bus.subscribe("/blocked", "node", got.append)
        bus.add_interceptor(lambda m: None if m.topic == "/blocked" else m)
        with obs.isolated(enabled=True) as session:
            assert bus.publish("/blocked", 1, sender="a") is None
            bus.publish("/ok", 1, sender="a")
            metrics = session.metrics
            assert metrics.counter_value(
                "bus_published_total", topic="/blocked") == 0.0
            assert metrics.counter_value(
                "bus_dropped_total", topic="/blocked", reason="intercepted"
            ) == 1.0
            assert metrics.counter_value(
                "bus_published_total", topic="/ok") == 1.0
        assert [m.topic for m in bus.traffic] == ["/ok"]
        assert got == []

    def test_unsubscribed_inflight_copy_is_a_drop_not_a_delivery(self):
        bus = DegradedBus()
        got = []
        sub = bus.subscribe("/t", "b", got.append)
        bus.set_link("a", "b", LinkModel(latency_s=1.0))
        with obs.isolated(enabled=True) as session:
            bus.publish("/t", 1, sender="a")
            sub.unsubscribe()
            bus.advance_clock(2.0)
            metrics = session.metrics
            assert metrics.counter_value("bus_published_total", topic="/t") == 1.0
            assert metrics.counter_value("bus_delivered_total", topic="/t") == 0.0
            assert metrics.counter_value(
                "bus_dropped_total", topic="/t", reason="unsubscribed"
            ) == 1.0
        assert got == []
        assert bus.stats.delivered == 0
        assert bus.stats.dropped_unsubscribed == 1
        assert len(bus.traffic) == 1  # the IDS still saw the transmission

    def test_delayed_delivery_counts_at_drain_time_with_latency(self):
        bus = DegradedBus()
        got = []
        bus.subscribe("/t", "b", got.append)
        bus.set_link("a", "b", LinkModel(latency_s=1.0))
        with obs.isolated(enabled=True) as session:
            bus.publish("/t", 1, sender="a")
            metrics = session.metrics
            assert metrics.counter_value("bus_delivered_total", topic="/t") == 0.0
            bus.advance_clock(2.0)
            assert metrics.counter_value("bus_delivered_total", topic="/t") == 1.0
            hist = metrics.snapshot()["histograms"]["bus_delivery_latency_s"]
            (series,) = hist.values()
            assert series["count"] == 1
            assert series["min"] >= 1.0  # measured at drain, not at publish
        assert got == [bus.traffic.on_topic("/t")[0]]


class TestEddiTransitionEvents:
    def test_fig5_battery_collapse_emits_guarantee_transitions(self):
        config = json.loads((SCENARIOS / "fig5_battery_fault.json").read_text())
        # Pull the collapse forward and make it severe so the demotion
        # lands inside a short test run.
        config["faults"] = [
            dict(config["faults"][0], at=10.0, soc_drop_to=0.08)
        ]
        with obs.isolated(enabled=True) as session:
            scenario = load_scenario_json(json.dumps(config))
            uav = scenario.world.uavs["uav1"]
            eddi, _stack = build_uav_eddi(uav, scenario.world)
            steps = 0
            while scenario.world.time < 40.0:
                now = scenario.step()
                eddi.step(now)
                steps += 1
            transitions = session.events.by_name("guarantee_transition")
            fault_events = session.events.by_name("fault_activated")
            cycles = session.metrics.counter_value(
                "eddi_cycles_total", uav=eddi.name
            )
            span_names = Counter(s.name for s in session.tracer.spans)

        # Every EddiResponse has exactly one matching event, in order.
        assert len(transitions) == len(eddi.response_log) >= 2
        for evt, response in zip(transitions, eddi.response_log):
            assert evt.sim_time == response.stamp
            assert evt.payload["uav"] == eddi.name
            assert evt.payload["guarantee"] == response.guarantee.value
            expected_previous = (
                response.previous.value if response.previous is not None else None
            )
            assert evt.payload["previous"] == expected_previous
        # The initial None -> X plus at least one fault-driven demotion.
        assert transitions[0].payload["previous"] is None
        assert any(t.payload["previous"] is not None for t in transitions)
        assert any(t.sim_time >= 10.0 for t in transitions)
        # Phase spans and the cycle counter track the loop exactly.
        assert cycles == steps
        assert span_names["eddi.monitor"] == steps
        assert span_names["eddi.diagnose"] == steps
        # The battery fault activation itself is on the event log.
        assert fault_events and fault_events[0].sim_time == pytest.approx(10.0)


# ----------------------------------------------------------- campaign wiring
def _obs_sample(config: dict, seed: int, timer) -> dict:
    bus = RosBus()
    bus.subscribe("/ping", "node", lambda message: None)
    with timer.phase("publish"):
        for i in range(config["n"]):
            bus.publish("/ping", i, sender="node")
    return {"n": config["n"]}


OBS_EXPERIMENT = register_experiment(
    CampaignExperiment(
        name="obs-integration-test",
        sample_fn=_obs_sample,
        grids=lambda name: [{"n": 3}, {"n": 5}],
        describe="test-only: counts bus publishes",
    )
)

GRID = [{"n": 3}, {"n": 5}]


class TestCampaignObservability:
    def test_manifest_gains_merged_metrics(self):
        result = run_campaign(OBS_EXPERIMENT, grid=GRID, observe=True)
        merged = result.manifest["metrics"]
        assert merged["counters"]["bus_published_total"]["topic=/ping"] == 8.0
        assert merged["counters"]["bus_delivered_total"]["topic=/ping"] == 8.0
        assert all(record.metrics is not None for record in result.records)
        # Per-sample snapshots carry their own counts.
        assert result.records[0].metrics["counters"]["bus_published_total"][
            "topic=/ping"
        ] == 3.0

    def test_unobserved_run_is_metric_free_and_fingerprints_match(self):
        observed = run_campaign(OBS_EXPERIMENT, grid=GRID, observe=True)
        plain = run_campaign(OBS_EXPERIMENT, grid=GRID)
        assert "metrics" not in plain.manifest
        assert all(record.metrics is None for record in plain.records)
        assert plain.fingerprint == observed.fingerprint

    def test_trace_file_renders_and_labels_lanes(self, tmp_path):
        trace = tmp_path / "campaign.jsonl"
        run_campaign(OBS_EXPERIMENT, grid=GRID, trace_path=trace)
        records = obs.read_trace(trace)
        kinds = Counter(r["kind"] for r in records)
        assert kinds["meta"] == 1 and kinds["metrics"] == 1
        spans = [r for r in records if r["kind"] == "span"]
        assert {
            s["labels"]["sample"] for s in spans if "sample" in s["labels"]
        } == {0, 1}
        campaign_spans = {
            s["name"] for s in spans if s["labels"].get("scope") == "campaign"
        }
        assert campaign_spans == {
            "campaign.grid", "campaign.cache_scan",
            "campaign.execute", "campaign.finalize",
        }
        text = obs.summarize_trace(trace)
        assert "phase.publish" in text and "/ping" in text

    def test_cache_hits_dont_leak_metrics_into_unobserved_runs(self, tmp_path):
        cache = tmp_path / "cache"
        run_campaign(OBS_EXPERIMENT, grid=GRID, observe=True, cache_dir=cache)
        replay = run_campaign(OBS_EXPERIMENT, grid=GRID, cache_dir=cache)
        assert all(record.cached for record in replay.records)
        assert all(record.metrics is None for record in replay.records)
        assert "metrics" not in replay.manifest
        # An observed replay keeps the cached snapshots.
        observed = run_campaign(
            OBS_EXPERIMENT, grid=GRID, observe=True, cache_dir=cache
        )
        assert all(record.metrics is not None for record in observed.records)
        assert observed.manifest["metrics"]["counters"][
            "bus_published_total"]["topic=/ping"] == 8.0

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_pool_workers_merge_identically(self):
        grid = [{"n": 2}, {"n": 4}, {"n": 6}]
        solo = run_campaign(OBS_EXPERIMENT, grid=grid, observe=True, workers=1)
        pooled = run_campaign(OBS_EXPERIMENT, grid=grid, observe=True, workers=2)
        assert pooled.manifest["metrics"] == solo.manifest["metrics"]
        assert pooled.fingerprint == solo.fingerprint

    def test_observe_leaves_global_session_untouched(self):
        assert not obs.OBS.enabled
        run_campaign(OBS_EXPERIMENT, grid=GRID, observe=True)
        assert not obs.OBS.enabled
        assert obs.OBS.metrics.counter_series("bus_published_total") == {}


class TestCli:
    def test_single_experiment_trace_metrics_and_summarize(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        prom = tmp_path / "run.prom"
        code = main(["conserts", "--trace", str(trace), "--metrics", str(prom)])
        assert code == 0
        assert trace.exists() and prom.exists()
        capsys.readouterr()
        assert main(["obs", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out

    def test_campaign_trace_flag_end_to_end(self, tmp_path, capsys):
        trace = tmp_path / "campaign.jsonl"
        code = main([
            "campaign", "obs-integration-test",
            "--no-cache", "--trace", str(trace),
        ])
        assert code == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["obs", "chrome", str(trace), "-o",
                     str(tmp_path / "t.json")]) == 0
        doc = json.loads((tmp_path / "t.json").read_text())
        assert doc["traceEvents"]

    def test_obs_cli_missing_file_is_exit_2(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 2
