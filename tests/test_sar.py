"""Unit tests for SAR coverage planning, detection model, and missions."""

import math

import numpy as np
import pytest

from repro.experiments.common import build_three_uav_world
from repro.sar.coverage import (
    boustrophedon_path,
    estimated_coverage_time_s,
    partition_area,
    path_length_m,
    swath_width_m,
)
from repro.sar.detection import (
    DetectionModel,
    TRAINING_ALTITUDE_M,
    detection_accuracy,
    feature_means,
)
from repro.sar.mission import SarMission


class TestSwath:
    def test_grows_with_altitude(self):
        assert swath_width_m(40.0) > swath_width_m(20.0)

    def test_overlap_shrinks_swath(self):
        assert swath_width_m(20.0, overlap=0.3) < swath_width_m(20.0, overlap=0.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            swath_width_m(0.0)
        with pytest.raises(ValueError):
            swath_width_m(20.0, overlap=1.0)

    def test_geometry(self):
        # 45-degree half FOV at 10 m, no overlap -> 20 m swath.
        assert swath_width_m(10.0, half_fov_deg=45.0, overlap=0.0) == pytest.approx(20.0)


class TestPartition:
    def test_strips_tile_the_area(self):
        strips = partition_area((300.0, 200.0), 3)
        assert len(strips) == 3
        assert strips[0][0] == (0.0, 100.0)
        assert strips[2][0] == (200.0, 300.0)
        assert all(s[1] == (0.0, 200.0) for s in strips)

    def test_single_uav_gets_everything(self):
        strips = partition_area((300.0, 200.0), 1)
        assert strips == [((0.0, 300.0), (0.0, 200.0))]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            partition_area((300.0, 200.0), 0)
        with pytest.raises(ValueError):
            partition_area((0.0, 200.0), 2)


class TestBoustrophedon:
    def test_waypoints_at_altitude(self):
        path = boustrophedon_path(((0.0, 100.0), (0.0, 200.0)), 25.0)
        assert all(wp[2] == 25.0 for wp in path)

    def test_alternating_direction(self):
        path = boustrophedon_path(((0.0, 100.0), (0.0, 200.0)), 20.0)
        # First track south->north, second north->south.
        assert path[0][1] == 0.0 and path[1][1] == 200.0
        assert path[2][1] == 200.0 and path[3][1] == 0.0

    def test_tracks_cover_width(self):
        bounds = ((0.0, 100.0), (0.0, 200.0))
        path = boustrophedon_path(bounds, 20.0)
        easts = sorted({wp[0] for wp in path})
        spacing = swath_width_m(20.0)
        assert easts[0] <= spacing  # first track within one swath of edge
        assert easts[-1] >= 100.0 - spacing

    def test_higher_altitude_fewer_tracks(self):
        bounds = ((0.0, 200.0), (0.0, 200.0))
        low = boustrophedon_path(bounds, 15.0)
        high = boustrophedon_path(bounds, 50.0)
        assert len(high) < len(low)

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            boustrophedon_path(((10.0, 10.0), (0.0, 100.0)), 20.0)

    def test_path_length_and_time(self):
        path = [(0.0, 0.0, 10.0), (0.0, 100.0, 10.0), (10.0, 100.0, 10.0)]
        assert path_length_m(path) == pytest.approx(110.0)
        assert estimated_coverage_time_s(path, 10.0) == pytest.approx(11.0)
        with pytest.raises(ValueError):
            estimated_coverage_time_s(path, 0.0)


class TestDetectionModel:
    def test_accuracy_at_training_altitude(self):
        assert detection_accuracy(TRAINING_ALTITUDE_M) == pytest.approx(0.998)

    def test_accuracy_decreases_with_altitude(self):
        accs = [detection_accuracy(a) for a in (20.0, 30.0, 45.0, 60.0)]
        assert all(b < a for a, b in zip(accs, accs[1:]))

    def test_accuracy_floor(self):
        assert detection_accuracy(500.0) == 0.5

    def test_rejects_nonpositive_altitude(self):
        with pytest.raises(ValueError):
            detection_accuracy(0.0)

    def test_feature_means_shift_with_altitude(self):
        low = feature_means(20.0)
        high = feature_means(60.0)
        assert high[0] < low[0]  # apparent scale shrinks
        assert high[3] > low[3]  # blur grows

    def test_empirical_accuracy_matches_model(self):
        model = DetectionModel(rng=np.random.default_rng(0))
        hits = sum(model.attempt("p", 20.0, 0.0).detected for _ in range(5000))
        assert hits / 5000 == pytest.approx(0.998, abs=0.005)

    def test_sample_features_shape(self):
        model = DetectionModel(rng=np.random.default_rng(0))
        assert model.sample_features(30.0, n_frames=7).shape == (7, 4)

    def test_false_positive_rate_low(self):
        model = DetectionModel(rng=np.random.default_rng(0))
        fps = sum(model.false_positive(20.0) for _ in range(5000))
        assert fps / 5000 < 0.01


class TestSarMission:
    def make_mission(self, n_persons=6, seed=2):
        scenario = build_three_uav_world(seed=seed, n_persons=n_persons)
        mission = SarMission(world=scenario.world, altitude_m=20.0)
        return mission

    def test_assign_paths_starts_all_uavs(self):
        mission = self.make_mission()
        plans = mission.assign_paths()
        assert set(plans) == {"uav1", "uav2", "uav3"}
        assert all(
            uav.mode.value == "mission" for uav in mission.world.uavs.values()
        )

    def test_mission_finds_most_persons(self):
        mission = self.make_mission(n_persons=6)
        mission.assign_paths()
        metrics = mission.run(max_time_s=1200.0)
        assert metrics.persons_total == 6
        assert metrics.find_rate >= 0.5
        assert metrics.completed_at is not None

    def test_coverage_fraction_grows(self):
        mission = self.make_mission(n_persons=0)
        mission.assign_paths()
        for _ in range(100):
            mission.step()
        early = mission.metrics.coverage_fraction
        for _ in range(400):
            mission.step()
        assert mission.metrics.coverage_fraction >= early
        assert 0.0 < mission.metrics.coverage_fraction <= 1.0

    def test_detection_accuracy_metric_near_model(self):
        mission = self.make_mission(n_persons=10, seed=4)
        mission.assign_paths()
        mission.run(max_time_s=1500.0)
        if mission.metrics.attempts:
            assert mission.metrics.detection_accuracy > 0.9

    def test_altitude_change_preserves_ground_track(self):
        mission = self.make_mission(n_persons=0)
        mission.assign_paths(altitude_m=40.0)
        for _ in range(50):
            mission.step()
        uav = mission.world.uavs["uav1"]
        before = [(wp[0], wp[1]) for wp in uav.plan.waypoints[uav.plan.index :]]
        mission.set_fleet_altitude(20.0)
        after = [(wp[0], wp[1]) for wp in uav.plan.waypoints]
        assert before == after
        assert all(wp[2] == 20.0 for wp in uav.plan.waypoints)

    def test_productive_time_tracked(self):
        mission = self.make_mission(n_persons=0)
        mission.assign_paths()
        for _ in range(20):
            mission.step()
        assert mission.metrics.productive_time_s["uav1"] == pytest.approx(10.0)

    def test_empty_metrics_are_nan(self):
        mission = self.make_mission(n_persons=0)
        assert math.isnan(mission.metrics.detection_accuracy)
        assert math.isnan(mission.metrics.find_rate)
