"""Property-style tests for ReliableChannel under randomized loss.

Fifty seeded, generated loss schedules (random loss rate, message count,
send times, heal time) drive an ``a -> b`` stream over a lossy
:class:`DegradedBus`. Whatever the schedule, three properties must hold
once the link heals and retransmissions drain:

- **no duplicate delivery**: the application callback sees each sequence
  number exactly once (the protocol may re-receive copies; the channel
  absorbs them);
- **in-order delivery**: the callback sees sequence numbers in strictly
  increasing send order, gaps buffered and released in order;
- **eventual delivery**: every queued message is delivered and
  acknowledged (nothing in flight) within bounded time after the loss
  clears.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.middleware.degraded import DegradedBus, LinkModel
from repro.middleware.reliable import ReliableChannel

N_SCHEDULES = 50
DT = 0.25
DRAIN_S = 40.0  # comfortably above link_down_after_s + max backoff


def _run_schedule(seed: int):
    """Drive one randomized schedule; returns (delivered, payloads, a, b)."""
    rng = np.random.default_rng(seed)
    loss = float(rng.uniform(0.2, 0.9))
    n_msgs = int(rng.integers(3, 20))
    # Send times: random spacing over the first ~15 s of the run.
    send_times = np.cumsum(rng.uniform(0.0, 1.5, size=n_msgs))
    heal_time = float(send_times[-1] + rng.uniform(0.0, 5.0))

    bus = DegradedBus()
    link = LinkModel(rng=np.random.default_rng(seed + 1), loss_probability=loss)
    bus.set_link("a", "b", link)

    delivered: list[tuple[int, str]] = []
    alice = ReliableChannel(bus=bus, local="a", peer="b")
    bob = ReliableChannel(
        bus=bus,
        local="b",
        peer="a",
        on_deliver=lambda seq, data: delivered.append((seq, data)),
    )

    payloads = [f"msg-{seed}-{i}" for i in range(n_msgs)]
    to_send = list(zip(send_times, payloads))
    t = 0.0
    end = heal_time + DRAIN_S
    while t < end:
        t += DT
        while to_send and to_send[0][0] <= t:
            alice.send(to_send.pop(0)[1], now=t)
        if t >= heal_time:
            link.loss_probability = 0.0
        bus.advance_clock(t)
        alice.step(t)
        bob.step(t)
    return delivered, payloads, alice, bob


@pytest.fixture(scope="module")
def schedules():
    return [_run_schedule(1000 + i) for i in range(N_SCHEDULES)]


class TestReliableChannelProperties:
    def test_no_duplicate_delivery(self, schedules):
        for delivered, _, _, _ in schedules:
            seqs = [seq for seq, _ in delivered]
            assert len(seqs) == len(set(seqs)), f"duplicates in {seqs}"

    def test_in_order_delivery(self, schedules):
        for delivered, payloads, _, _ in schedules:
            assert [seq for seq, _ in delivered] == sorted(
                seq for seq, _ in delivered
            )
            # Payload order mirrors send order exactly.
            assert [data for _, data in delivered] == payloads[: len(delivered)]

    def test_eventual_delivery_of_every_message(self, schedules):
        for delivered, payloads, alice, _ in schedules:
            assert [data for _, data in delivered] == payloads
            assert alice.in_flight == 0
            assert alice.stats.acked == len(payloads)

    def test_loss_actually_exercised_the_protocol(self, schedules):
        # Across 50 schedules at 20-90% loss, retransmission and
        # duplicate absorption must both have fired — otherwise the
        # properties above were tested against a trivially clean link.
        assert sum(a.stats.retries for _, _, a, _ in schedules) > 50
        assert sum(b.stats.duplicates for _, _, _, b in schedules) > 0
        assert sum(b.stats.gaps for _, _, _, b in schedules) > 0

    def test_link_recovers_after_heal(self, schedules):
        for _, _, alice, _ in schedules:
            assert alice.link_up
