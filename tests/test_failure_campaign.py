"""Failure-injection campaign: the assurance stack under compound faults.

Integration-level resilience tests: inject multiple simultaneous faults
through the fault framework and verify the EDDI layer reaches the safe
decision the Fig. 1 logic prescribes for each combination.
"""


from repro.core.eddi import Eddi, MonitorAdapter
from repro.core.uav_network import UavConSertNetwork, UavGuarantee
from repro.experiments.common import build_three_uav_world
from repro.safedrones.monitor import SafeDronesMonitor
from repro.security.spoofing import GpsSpoofingDetector
from repro.uav.faults import (
    FaultSchedule,
    battery_collapse,
    camera_degradation,
    gps_denial,
    gps_spoof,
)
from repro.uav.uav import FlightMode


def build_monitored_uav(seed=11):
    """A UAV with the full adapter stack wired to its ConSert network."""
    scenario = build_three_uav_world(seed=seed, n_persons=0)
    world = scenario.world
    uav = world.uavs["uav1"]
    network = UavConSertNetwork(uav_id="uav1")
    network.set_reliability_level("high")
    safedrones = SafeDronesMonitor(uav_id="uav1")
    spoof_detector = GpsSpoofingDetector()

    def update(now):
        assessment = safedrones.update(now, uav.battery.soc, uav.battery.temp_c)
        network.set_reliability_level(assessment.level.value)
        fix = uav.sensors.gps.measure(uav.dynamics.position, now)
        network.set_gps_quality_ok(fix.quality_ok)
        if fix.valid:
            verdict = spoof_detector.update(
                now,
                world.frame.to_enu(fix.point),
                uav.sensors.imu.measure(uav.dynamics.velocity),
                world.dt,
            )
            network.set_attack_detected(verdict.spoofed)
        network.set_camera_healthy(uav.sensors.camera.operational)

    eddi = Eddi(name="uav1", network=network)
    eddi.add_adapter(MonitorAdapter("stack", update))
    return world, uav, network, eddi


def run_campaign(world, eddi, schedule, until_s, stop_when=None):
    guarantee = None
    while world.time < until_s:
        world.step()
        schedule.step(world.time, world.uavs)
        guarantee = eddi.step(world.time)
        if stop_when is not None and stop_when(guarantee):
            break
    return guarantee


class TestFailureCampaigns:
    def test_clean_run_keeps_full_capability(self):
        world, uav, network, eddi = build_monitored_uav()
        uav.start_mission([(200.0, 200.0, 20.0)])
        guarantee = run_campaign(world, eddi, FaultSchedule(), until_s=30.0)
        assert guarantee is UavGuarantee.CONTINUE_MISSION_EXTRA

    def test_gps_denial_degrades_but_continues(self):
        world, uav, network, eddi = build_monitored_uav()
        uav.start_mission([(200.0, 200.0, 20.0)])
        schedule = FaultSchedule()
        schedule.add(gps_denial("uav1", at_time=5.0))
        guarantee = run_campaign(world, eddi, schedule, until_s=30.0)
        # CL / vision keep the mission going per Fig. 1's fallback ladder.
        assert guarantee in (
            UavGuarantee.CONTINUE_MISSION_EXTRA,
            UavGuarantee.CONTINUE_MISSION,
        )
        assert network.navigation_guarantee() != "high_performance_navigation"

    def test_spoof_revokes_gps_navigation(self):
        world, uav, network, eddi = build_monitored_uav()
        uav.start_mission([(0.0, 300.0, 20.0)])
        schedule = FaultSchedule()
        schedule.add(gps_spoof("uav1", at_time=10.0, offset_m=(40.0, 0.0, 0.0)))
        run_campaign(world, eddi, schedule, until_s=60.0)
        assert network.navigation_guarantee() == "collaborative_navigation"

    def test_battery_collapse_eventually_grounds_uav(self):
        world, uav, network, eddi = build_monitored_uav()
        uav.start_mission([(0.0, 300.0, 20.0), (50.0, 300.0, 20.0)] * 10)
        uav.battery.soc = 0.8
        schedule = FaultSchedule()
        schedule.add(battery_collapse("uav1", at_time=20.0, soc_drop_to=0.2))
        eddi.on_guarantee(
            UavGuarantee.RETURN_TO_BASE,
            lambda r: uav.command_mode(FlightMode.RETURN_TO_BASE),
        )
        eddi.on_guarantee(
            UavGuarantee.EMERGENCY_LAND,
            lambda r: uav.command_mode(FlightMode.EMERGENCY_LAND),
        )
        guarantee = run_campaign(
            world, eddi, schedule, until_s=1200.0,
            stop_when=lambda g: g in (
                UavGuarantee.RETURN_TO_BASE, UavGuarantee.EMERGENCY_LAND
            ),
        )
        assert guarantee in (
            UavGuarantee.RETURN_TO_BASE,
            UavGuarantee.EMERGENCY_LAND,
        )
        # The response hook actually changed the flight mode.
        assert uav.mode in (
            FlightMode.RETURN_TO_BASE,
            FlightMode.EMERGENCY_LAND,
            FlightMode.LANDED,
        )

    def test_compound_worst_case_forces_emergency_landing(self):
        world, uav, network, eddi = build_monitored_uav()
        uav.start_mission([(0.0, 300.0, 20.0)])
        network.set_nearby_uavs_available(False)  # isolated
        schedule = FaultSchedule()
        schedule.add(gps_denial("uav1", at_time=5.0))
        schedule.add(camera_degradation("uav1", at_time=5.0, rate_per_s=0.2))
        guarantee = run_campaign(
            world, eddi, schedule, until_s=60.0,
            stop_when=lambda g: g is UavGuarantee.EMERGENCY_LAND,
        )
        assert guarantee is UavGuarantee.EMERGENCY_LAND
        assert network.navigation_guarantee() == "navigation_unavailable"

    def test_fault_recovery_restores_guarantee(self):
        world, uav, network, eddi = build_monitored_uav()
        uav.start_mission([(200.0, 200.0, 20.0)])
        schedule = FaultSchedule()
        schedule.add(gps_denial("uav1", at_time=5.0, duration_s=10.0))
        run_campaign(world, eddi, schedule, until_s=10.0)
        degraded_nav = network.navigation_guarantee()
        run_campaign(world, eddi, schedule, until_s=30.0)
        assert degraded_nav != "high_performance_navigation"
        assert network.navigation_guarantee() == "high_performance_navigation"
