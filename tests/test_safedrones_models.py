"""Unit tests for the SafeDrones component models and runtime monitor."""

import numpy as np
import pytest

from repro.safedrones.battery import BatteryReliabilityModel
from repro.safedrones.monitor import (
    ReliabilityLevel,
    SafeDronesMonitor,
)
from repro.safedrones.processor import ProcessorReliabilityModel
from repro.safedrones.propulsion import (
    PropulsionModel,
    TOLERABLE_FAILURES,
    motor_chain,
)


class TestPropulsion:
    def test_quad_has_no_redundancy(self):
        chain = motor_chain(4)
        assert chain.states == ["ok_4", "failed"]

    def test_hexa_tolerates_one(self):
        chain = motor_chain(6)
        assert chain.states == ["ok_6", "ok_5", "failed"]

    def test_octa_tolerates_two(self):
        chain = motor_chain(8)
        assert chain.states == ["ok_8", "ok_7", "ok_6", "failed"]

    def test_rejects_unsupported_rotor_count(self):
        with pytest.raises(ValueError):
            motor_chain(3)

    def test_rejects_bad_reconfig_probability(self):
        with pytest.raises(ValueError):
            motor_chain(6, reconfig_success=1.5)

    def test_more_rotors_more_reliable_with_perfect_reconfig(self):
        horizon = 3600.0
        pofs = {
            n: PropulsionModel(
                rotor_count=n, reconfig_success=1.0
            ).failure_probability(horizon)
            for n in (4, 6, 8)
        }
        assert pofs[8] < pofs[6] < pofs[4]

    def test_imperfect_reconfig_penalises_large_airframes_short_horizon(self):
        # With risky reconfiguration, more motors means more opportunities
        # for a failed remap at short horizons — the crossover the
        # propulsion ablation bench sweeps.
        horizon = 3600.0
        hexa = PropulsionModel(rotor_count=6, reconfig_success=0.5)
        octa = PropulsionModel(rotor_count=8, reconfig_success=0.5)
        assert octa.failure_probability(horizon) > hexa.failure_probability(horizon)

    def test_motor_failure_degrades_reliability(self):
        model = PropulsionModel(rotor_count=6)
        before = model.failure_probability(3600.0)
        model.record_motor_failure()
        after = model.failure_probability(3600.0)
        assert after > before
        assert model.controllable

    def test_too_many_failures_lose_control(self):
        model = PropulsionModel(rotor_count=4)
        model.record_motor_failure()
        assert not model.controllable
        assert model.failure_probability(1.0) == 1.0
        assert model.mttf_hours() == 0.0

    def test_reconfig_success_improves_survival(self):
        good = PropulsionModel(rotor_count=6, reconfig_success=0.99)
        bad = PropulsionModel(rotor_count=6, reconfig_success=0.5)
        assert good.failure_probability(7200.0) < bad.failure_probability(7200.0)

    def test_tolerable_failures_table(self):
        assert TOLERABLE_FAILURES == {4: 0, 6: 1, 8: 2}


class TestBatteryReliability:
    def test_pof_starts_at_zero(self):
        model = BatteryReliabilityModel()
        assert model.failure_probability == 0.0

    def test_pof_monotone_under_updates(self):
        model = BatteryReliabilityModel()
        model.update(0.0, 0.9, 25.0)
        values = []
        for t in range(1, 200):
            values.append(model.update(float(t), 0.9, 25.0))
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_heat_accelerates(self):
        cool = BatteryReliabilityModel()
        hot = BatteryReliabilityModel()
        cool.update(0.0, 0.9, 25.0)
        hot.update(0.0, 0.9, 25.0)
        cool.update(600.0, 0.9, 25.0)
        hot.update(600.0, 0.9, 85.0)
        assert hot.failure_probability > cool.failure_probability

    def test_deep_discharge_accelerates(self):
        full = BatteryReliabilityModel()
        empty = BatteryReliabilityModel()
        full.update(0.0, 0.9, 25.0)
        empty.update(0.0, 0.2, 25.0)
        full.update(600.0, 0.9, 25.0)
        empty.update(600.0, 0.2, 25.0)
        assert empty.failure_probability > full.failure_probability

    def test_soc_factor_is_one_above_knee(self):
        model = BatteryReliabilityModel()
        assert model.soc_factor(0.8) == 1.0
        assert model.soc_factor(0.5) == 1.0
        assert model.soc_factor(0.3) > 1.0

    def test_arrhenius_reference_is_unity(self):
        model = BatteryReliabilityModel()
        assert model.arrhenius_factor(25.0) == pytest.approx(1.0)
        assert model.arrhenius_factor(85.0) > 10.0

    def test_cell_fault_advances_state(self):
        model = BatteryReliabilityModel()
        model.update(0.0, 0.9, 25.0)
        assert model.most_likely_state() == "healthy"
        model.register_cell_fault()
        assert model.most_likely_state() == "degraded"

    def test_rejects_time_reversal(self):
        model = BatteryReliabilityModel()
        model.update(10.0, 0.9, 25.0)
        with pytest.raises(ValueError):
            model.update(5.0, 0.9, 25.0)

    def test_prediction_exceeds_current(self):
        model = BatteryReliabilityModel()
        model.update(0.0, 0.4, 80.0)
        model.update(60.0, 0.4, 80.0)
        predicted = model.predict_failure_probability(300.0, 0.4, 80.0)
        assert predicted > model.failure_probability

    def test_distribution_remains_normalised(self):
        model = BatteryReliabilityModel()
        model.update(0.0, 0.3, 70.0)
        model.update(500.0, 0.3, 70.0)
        assert model.distribution.sum() == pytest.approx(1.0)


class TestProcessor:
    def test_reliability_decays_over_time(self):
        model = ProcessorReliabilityModel()
        model.update(0.0, 50.0)
        model.update(3600.0, 50.0)
        r1 = model.reliability
        model.update(7200.0, 50.0)
        assert model.reliability < r1

    def test_thermal_factor_reference(self):
        model = ProcessorReliabilityModel()
        assert model.thermal_factor(45.0) == pytest.approx(1.0)
        assert model.thermal_factor(90.0) > 1.0

    def test_mission_reliability_closed_form(self):
        model = ProcessorReliabilityModel()
        r = model.mission_reliability(3600.0, 45.0)
        lam = (model.ser_rate_per_hour + model.wearout_rate_per_hour) / 3600.0
        assert r == pytest.approx(np.exp(-lam * 3600.0))

    def test_rejects_time_reversal(self):
        model = ProcessorReliabilityModel()
        model.update(10.0, 50.0)
        with pytest.raises(ValueError):
            model.update(1.0, 50.0)


class TestReliabilityLevel:
    def test_thresholds(self):
        assert ReliabilityLevel.from_failure_probability(0.0) is ReliabilityLevel.HIGH
        assert ReliabilityLevel.from_failure_probability(0.3) is ReliabilityLevel.MEDIUM
        assert ReliabilityLevel.from_failure_probability(0.9) is ReliabilityLevel.LOW

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ReliabilityLevel.from_failure_probability(1.5)


class TestSafeDronesMonitor:
    def test_healthy_flight_stays_high(self):
        monitor = SafeDronesMonitor(uav_id="u")
        for t in range(0, 300, 5):
            assessment = monitor.update(float(t), 0.9, 30.0)
        assert assessment.level is ReliabilityLevel.HIGH
        assert not assessment.abort_recommended

    def test_detects_soc_collapse(self):
        monitor = SafeDronesMonitor(uav_id="u")
        monitor.update(0.0, 0.80, 30.0)
        assessment = monitor.update(1.0, 0.40, 80.0)
        assert assessment.battery_fault_detected

    def test_gradual_drain_not_a_fault(self):
        monitor = SafeDronesMonitor(uav_id="u")
        soc = 0.9
        for t in range(0, 600, 5):
            soc -= 0.002
            assessment = monitor.update(float(t), soc, 30.0)
        assert not assessment.battery_fault_detected

    def test_abort_recommended_past_threshold(self):
        monitor = SafeDronesMonitor(uav_id="u", pof_abort_threshold=0.9)
        monitor.update(0.0, 0.80, 30.0)
        monitor.update(1.0, 0.40, 85.0)  # fault
        assessment = None
        for t in range(2, 2000, 2):
            assessment = monitor.update(float(t), 0.35, 85.0)
            if assessment.abort_recommended:
                break
        assert assessment.abort_recommended
        assert assessment.failure_probability >= 0.9

    def test_history_accumulates(self):
        monitor = SafeDronesMonitor(uav_id="u")
        for t in range(5):
            monitor.update(float(t), 0.9, 25.0)
        assert len(monitor.history) == 5
        assert monitor.latest is monitor.history[-1]

    def test_fault_tree_combines_components(self):
        monitor = SafeDronesMonitor(uav_id="u")
        assessment = monitor.update(0.0, 0.9, 25.0)
        assert assessment.failure_probability >= assessment.battery_pof
        assert assessment.failure_probability >= assessment.processor_pof
