"""Tests for the standard EDDI wiring factory."""

import numpy as np

from repro.core.adapters import build_fleet_eddis, build_uav_eddi
from repro.core.decider import MissionDecider, MissionVerdict
from repro.core.uav_network import UavGuarantee
from repro.experiments.common import build_three_uav_world
from repro.safeml.monitor import SafeMlMonitor
from repro.uav.faults import FaultSchedule, gps_spoof, motor_failure


def stepped_world(n_steps=20, seed=8):
    scenario = build_three_uav_world(seed=seed, n_persons=0)
    return scenario.world


class TestBuildUavEddi:
    def test_healthy_uav_full_capability(self):
        world = stepped_world()
        uav = world.uavs["uav1"]
        eddi, stack = build_uav_eddi(uav, world)
        for _ in range(10):
            world.step()
            guarantee = eddi.step(world.time)
        assert guarantee is UavGuarantee.CONTINUE_MISSION_EXTRA

    def test_neighbors_derived_from_geometry(self):
        world = stepped_world()
        uav = world.uavs["uav1"]
        eddi, stack = build_uav_eddi(uav, world, cl_range_m=50.0)
        # Bases are 150 m apart: no neighbor within 50 m.
        world.step()
        eddi.step(world.time)
        assert not stack.network._ev_neighbors.value
        # Move a peer close by.
        world.uavs["uav2"].dynamics.position = (35.0, -20.0, 0.0)
        world.step()
        eddi.step(world.time)
        assert stack.network._ev_neighbors.value

    def test_motor_failures_propagate_to_reliability(self):
        world = stepped_world()
        uav = world.uavs["uav1"]  # quadrotor: one motor out is fatal
        eddi, stack = build_uav_eddi(uav, world)
        schedule = FaultSchedule()
        schedule.add(motor_failure("uav1", at_time=2.0))
        guarantee = None
        while world.time < 5.0:
            world.step()
            schedule.step(world.time, world.uavs)
            guarantee = eddi.step(world.time)
        assert stack.safedrones.propulsion.motors_failed == 1
        assert guarantee in (
            UavGuarantee.RETURN_TO_BASE,
            UavGuarantee.EMERGENCY_LAND,
        )

    def test_spoof_flows_to_attack_evidence(self):
        world = stepped_world()
        uav = world.uavs["uav1"]
        uav.start_mission([(0.0, 300.0, 20.0)])
        eddi, stack = build_uav_eddi(uav, world)
        schedule = FaultSchedule()
        schedule.add(gps_spoof("uav1", at_time=8.0, offset_m=(40.0, 0.0, 0.0)))
        while world.time < 40.0:
            world.step()
            schedule.step(world.time, world.uavs)
            eddi.step(world.time)
            if stack.spoof_detector.spoof_detected:
                break
        assert stack.spoof_detector.spoof_detected
        # GPS navigation is revoked; the ladder falls to whichever fallback
        # the live geometry supports (no peer within CL range here).
        assert stack.network.navigation_guarantee() != "high_performance_navigation"
        assert stack.network.navigation_guarantee() in (
            "collaborative_navigation",
            "assistant_navigation",
            "vision_navigation",
        )

    def test_safeml_gate(self):
        world = stepped_world()
        uav = world.uavs["uav1"]
        rng = np.random.default_rng(4)
        safeml = SafeMlMonitor(window_size=10, rng=np.random.default_rng(5))
        safeml.fit(rng.normal(0.0, 1.0, size=(100, 3)))
        eddi, stack = build_uav_eddi(uav, world, safeml=safeml)
        # Feed badly shifted camera features.
        for _ in range(10):
            safeml.observe(rng.normal(8.0, 1.0, 3))
        world.step()
        eddi.step(world.time)
        assert not stack.network._ev_safeml_ok.value

    def test_fleet_factory_with_decider(self):
        world = stepped_world()
        fleet = build_fleet_eddis(world)
        assert set(fleet) == {"uav1", "uav2", "uav3"}
        decider = MissionDecider()
        for eddi, stack in fleet.values():
            decider.add_uav(stack.network)
        for _ in range(5):
            world.step()
            for eddi, _ in fleet.values():
                eddi.step(world.time)
        assert decider.decide().verdict is MissionVerdict.AS_PLANNED
