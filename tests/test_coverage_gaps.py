"""Targeted tests for remaining coverage gaps across the library."""

from dataclasses import dataclass

import pytest

from repro.__main__ import main as cli_main
from repro.core.ode import consert_from_dict, conserts_to_dict
from repro.core.conserts import AndNode, ConSert, Demand, Guarantee
from repro.safedrones.fta import ComplexBasicEvent, FaultTree, OrGate, BasicEvent
from repro.safedrones.importance import importance_analysis


@dataclass
class MutableModel:
    """Test double with a settable failure probability."""

    failure_probability: float = 0.3


class TestImportanceWithComplexEvents:
    def test_complex_event_pinning_and_restoration(self):
        model = MutableModel(0.3)
        tree = FaultTree(
            "t",
            top=OrGate(
                "top",
                [ComplexBasicEvent("dynamic", model), BasicEvent("static", 0.1)],
            ),
        )
        before = tree.top_event_probability()
        reports = {r.event: r for r in importance_analysis(tree)}
        # OR gate: Birnbaum of 'dynamic' = 1 - p(static) = 0.9.
        assert reports["dynamic"].birnbaum == pytest.approx(0.9)
        # The live model is restored after the what-if evaluation.
        assert tree.top_event_probability() == pytest.approx(before)
        model.failure_probability = 0.7
        assert tree.top_event_probability() > before


class TestOdeUnboundProviders:
    def test_unknown_provider_left_unbound(self):
        provider = ConSert("elsewhere", guarantees=[Guarantee("ok", None)])
        consumer = ConSert(
            "consumer",
            guarantees=[
                Guarantee(
                    "go",
                    AndNode(
                        [Demand("d", frozenset({"ok"}), providers=[provider])]
                    ),
                ),
                Guarantee("stop", None),
            ],
        )
        data = conserts_to_dict(consumer)
        # Rebuild WITHOUT the provider in scope: the demand must survive
        # unbound (integrator binds it later), falling back meanwhile.
        rebuilt = consert_from_dict(data, providers={})
        assert rebuilt.evaluate().name == "stop"
        demand = rebuilt.demand_nodes()[0]
        assert demand.providers == []
        # Late binding restores the strong guarantee.
        demand.bind(provider)
        assert rebuilt.evaluate().name == "go"


class TestCliExperimentPaths:
    def test_sar_accuracy_command(self, capsys):
        assert cli_main(["sar-accuracy"]) == 0
        out = capsys.readouterr().out
        assert "uncertainty high/final" in out
        assert "0.99" in out

    def test_fig6_command(self, capsys):
        assert cli_main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "max trajectory deviation" in out
        assert "Security EDDI latency" in out

    def test_seed_override(self, capsys):
        assert cli_main(["fig7", "--seed", "17"]) == 0
        out = capsys.readouterr().out
        assert "landing error" in out


class TestWebApiLogFeed:
    def test_log_feed_with_entries(self):
        from repro.experiments.common import build_three_uav_world
        from repro.platform.api import WebApi
        from repro.platform.database import DatabaseManager
        from repro.platform.gcs import GroundControlStation
        from repro.platform.uav_manager import UavManager

        scenario = build_three_uav_world(seed=1, n_persons=0)
        world = scenario.world
        manager = UavManager(bus=world.bus, database=DatabaseManager())
        gcs = GroundControlStation(bus=world.bus, uav_manager=manager)
        gcs.log(1.0, "uav1", "warning", "battery low: 20%")
        gcs.log(2.0, "gcs", "critical", "spoofing detected")
        api = WebApi(uav_manager=manager, gcs=gcs)
        feed = api.log_feed()["logs"]
        assert len(feed) == 2
        assert feed[-1]["level"] == "critical"

    def test_feeds_empty_without_components(self):
        from repro.experiments.common import build_three_uav_world
        from repro.platform.api import WebApi
        from repro.platform.database import DatabaseManager
        from repro.platform.uav_manager import UavManager

        scenario = build_three_uav_world(seed=1, n_persons=0)
        manager = UavManager(bus=scenario.world.bus, database=DatabaseManager())
        api = WebApi(uav_manager=manager)
        assert api.log_feed() == {"logs": []}
        assert api.alert_feed() == {"alerts": []}
        assert api.tracks() == {"tracks": {}}
