"""Unit tests for the UAV simulator substrate: battery, dynamics, sensors,
agent, and world."""

import math

import numpy as np
import pytest

from repro.geo import EnuFrame, GeoPoint
from repro.middleware.rosbus import RosBus
from repro.uav.battery import Battery, BatteryFault, BatterySpec
from repro.uav.dynamics import UavDynamics, WaypointPlan
from repro.uav.sensors import GpsSensor, SensorSuite
from repro.uav.uav import FlightMode, Telemetry, Uav, UavSpec
from repro.uav.world import World


FRAME = EnuFrame(origin=GeoPoint(35.0, 33.0, 0.0))


class TestBattery:
    def test_soc_depletes_with_load(self):
        battery = Battery()
        battery.step(dt=3600.0, now=3600.0, draw_w=battery.spec.capacity_wh)
        assert battery.soc == pytest.approx(0.0, abs=1e-9)

    def test_soc_never_negative(self):
        battery = Battery(soc=0.01)
        battery.step(dt=3600.0, now=1.0, draw_w=10_000.0)
        assert battery.soc == 0.0

    def test_temperature_relaxes_toward_target(self):
        battery = Battery(temp_c=25.0)
        for i in range(1000):
            battery.step(dt=1.0, now=float(i), draw_w=battery.spec.hover_draw_w,
                         ambient_c=25.0)
        assert battery.temp_c == pytest.approx(37.0, abs=1.0)  # 25 + 12 rise

    def test_fault_triggers_at_scheduled_time(self):
        battery = Battery(soc=0.8)
        battery.inject_fault(BatteryFault(at_time=10.0, soc_drop_to=0.4))
        battery.step(dt=1.0, now=9.0, draw_w=0.0)
        assert not battery.faulted
        battery.step(dt=1.0, now=10.0, draw_w=0.0)
        assert battery.faulted
        assert battery.soc == pytest.approx(0.4, abs=0.01)

    def test_fault_does_not_raise_soc(self):
        battery = Battery(soc=0.2)
        battery.inject_fault(BatteryFault(at_time=0.0, soc_drop_to=0.4))
        battery.step(dt=1.0, now=1.0, draw_w=0.0)
        assert battery.soc <= 0.2

    def test_fault_sustains_heat(self):
        battery = Battery(soc=0.8)
        battery.inject_fault(BatteryFault(at_time=0.0))
        for i in range(1, 2000):
            battery.step(dt=1.0, now=float(i), draw_w=60.0, ambient_c=25.0)
        assert battery.temp_c > 60.0
        assert battery.thermally_stressed

    def test_endurance_estimate(self):
        battery = Battery(soc=1.0, spec=BatterySpec(capacity_wh=100.0))
        assert battery.endurance_estimate_s(100.0) == pytest.approx(3600.0)
        assert battery.endurance_estimate_s(0.0) == math.inf

    def test_soc_percent(self):
        assert Battery(soc=0.42).soc_percent == pytest.approx(42.0)


class TestWaypointPlan:
    def test_advances_on_capture(self):
        plan = WaypointPlan(waypoints=[(0, 0, 10), (50, 0, 10)], capture_radius_m=2.0)
        assert plan.active == (0, 0, 10)
        assert plan.advance_if_captured((0.5, 0.5, 10.0))
        assert plan.active == (50, 0, 10)

    def test_no_advance_outside_radius(self):
        plan = WaypointPlan(waypoints=[(0, 0, 10)], capture_radius_m=2.0)
        assert not plan.advance_if_captured((10.0, 0.0, 10.0))

    def test_complete_after_last(self):
        plan = WaypointPlan(waypoints=[(0, 0, 10)])
        plan.advance_if_captured((0, 0, 10))
        assert plan.complete
        assert plan.active is None

    def test_replace_restarts(self):
        plan = WaypointPlan(waypoints=[(0, 0, 10)])
        plan.advance_if_captured((0, 0, 10))
        plan.replace([(5, 5, 10)])
        assert not plan.complete
        assert plan.index == 0


class TestDynamics:
    def test_flies_toward_target(self):
        dyn = UavDynamics()
        for _ in range(100):
            dyn.step_toward((100.0, 0.0, 20.0), dt=0.5)
        assert dyn.position[0] > 50.0

    def test_respects_speed_limit(self):
        dyn = UavDynamics(max_speed_mps=5.0)
        for _ in range(100):
            dyn.step_toward((1000.0, 0.0, 0.0), dt=0.5)
            assert dyn.speed_mps <= 5.0 + 1e-6

    def test_settles_at_target(self):
        dyn = UavDynamics()
        for _ in range(400):
            dyn.step_toward((30.0, 40.0, 10.0), dt=0.5)
        assert math.dist(dyn.position, (30.0, 40.0, 10.0)) < 1.0

    def test_hover_on_none(self):
        dyn = UavDynamics(velocity=(5.0, 0.0, 0.0))
        for _ in range(50):
            dyn.step_toward(None, dt=0.5)
        assert dyn.speed_mps < 0.1

    def test_climb_rate_limited(self):
        dyn = UavDynamics(max_climb_mps=2.0)
        for _ in range(100):
            dyn.step_toward((0.0, 0.0, 500.0), dt=0.5)
            assert abs(dyn.velocity[2]) <= 2.0 + 1e-6

    def test_heading(self):
        dyn = UavDynamics(velocity=(1.0, 0.0, 0.0))
        assert dyn.heading_deg == pytest.approx(90.0)
        dyn.velocity = (0.0, 1.0, 0.0)
        assert dyn.heading_deg == pytest.approx(0.0)
        dyn.velocity = (0.0, 0.0, 0.0)
        assert dyn.heading_deg == 0.0


class TestSensors:
    def test_gps_noise_bounded(self):
        gps = GpsSensor(frame=FRAME, rng=np.random.default_rng(0), noise_std_m=0.3)
        fixes = [gps.measure((100.0, 50.0, 20.0), now=0.0) for _ in range(100)]
        errors = [
            math.dist(FRAME.to_enu(f.point), (100.0, 50.0, 20.0)) for f in fixes
        ]
        assert np.mean(errors) < 1.5
        assert all(f.quality_ok for f in fixes)

    def test_gps_denial(self):
        gps = GpsSensor(frame=FRAME, rng=np.random.default_rng(0), denied=True)
        fix = gps.measure((0.0, 0.0, 0.0), now=0.0)
        assert not fix.valid
        assert fix.num_satellites == 0
        assert not fix.quality_ok

    def test_gps_spoof_offset_applied(self):
        gps = GpsSensor(
            frame=FRAME,
            rng=np.random.default_rng(0),
            spoof_offset_m=(50.0, 0.0, 0.0),
            noise_std_m=0.01,
        )
        fix = gps.measure((0.0, 0.0, 10.0), now=0.0)
        east, north, _ = FRAME.to_enu(fix.point)
        assert east == pytest.approx(50.0, abs=0.5)

    def test_spoofed_fix_still_looks_plausible(self):
        gps = GpsSensor(
            frame=FRAME, rng=np.random.default_rng(0), spoof_offset_m=(50.0, 0.0, 0.0)
        )
        fix = gps.measure((0.0, 0.0, 0.0), now=0.0)
        assert fix.valid
        assert fix.num_satellites >= 6

    def test_suite_construction(self):
        suite = SensorSuite.create(FRAME, np.random.default_rng(0))
        assert suite.camera.operational
        assert suite.wind.measure(3.0) >= 0.0


def make_uav(uav_id="u1", base=(0.0, 0.0, 0.0)):
    bus = RosBus()
    return Uav(
        spec=UavSpec(uav_id=uav_id, base_position=base),
        frame=FRAME,
        bus=bus,
        rng=np.random.default_rng(1),
    )


class TestUavAgent:
    def test_mission_flies_waypoints_and_returns(self):
        uav = make_uav()
        uav.start_mission([(30.0, 0.0, 15.0), (30.0, 30.0, 15.0)])
        for i in range(1, 600):
            uav.step(0.5, i * 0.5)
            if uav.mode is FlightMode.LANDED:
                break
        assert uav.plan.complete
        assert uav.mode is FlightMode.LANDED
        assert math.dist(uav.dynamics.position[:2], (0.0, 0.0)) < 3.0

    def test_hold_mode_hovers(self):
        uav = make_uav()
        uav.start_mission([(100.0, 0.0, 20.0)])
        for i in range(1, 20):
            uav.step(0.5, i * 0.5)
        uav.command_mode(FlightMode.HOLD)
        for i in range(20, 40):  # bleed off momentum first
            uav.step(0.5, i * 0.5)
        position = uav.dynamics.position
        for i in range(40, 80):
            uav.step(0.5, i * 0.5)
        assert math.dist(uav.dynamics.position, position) < 1.0

    def test_emergency_land_descends_in_place(self):
        uav = make_uav()
        uav.dynamics.position = (50.0, 50.0, 25.0)
        uav.command_mode(FlightMode.EMERGENCY_LAND)
        for i in range(1, 200):
            uav.step(0.5, i * 0.5)
            if uav.mode is FlightMode.LANDED:
                break
        assert uav.mode is FlightMode.LANDED
        assert math.dist(uav.dynamics.position[:2], (50.0, 50.0)) < 2.0

    def test_spoofed_gps_drags_vehicle_off_course(self):
        clean = make_uav()
        spoofed = make_uav()
        spoofed.sensors.gps.spoof_offset_m = (20.0, 0.0, 0.0)
        for uav in (clean, spoofed):
            uav.start_mission([(0.0, 100.0, 15.0)])
            for i in range(1, 200):
                uav.step(0.5, i * 0.5)
        # The spoofed vehicle is physically displaced westward by ~offset.
        assert spoofed.dynamics.position[0] < clean.dynamics.position[0] - 10.0

    def test_telemetry_published_on_bus(self):
        uav = make_uav()
        got = []
        uav.bus.subscribe("/u1/telemetry", "test", lambda m: got.append(m.data))
        uav.start_mission([(10.0, 0.0, 10.0)])
        for i in range(1, 30):
            uav.bus.advance_clock(i * 0.5)
            uav.step(0.5, i * 0.5)
        assert got
        assert isinstance(got[0], Telemetry)
        assert got[0].uav_id == "u1"
        assert 0.0 <= got[0].battery_soc <= 1.0

    def test_ground_clamp(self):
        uav = make_uav()
        uav.dynamics.position = (0.0, 0.0, 1.0)
        uav.command_mode(FlightMode.EMERGENCY_LAND)
        for i in range(1, 50):
            uav.step(0.5, i * 0.5)
            assert uav.dynamics.position[2] >= 0.0


class TestWorld:
    def test_step_advances_time_and_bus_clock(self):
        world = World()
        world.step()
        assert world.time == pytest.approx(world.dt)
        assert world.bus.clock == world.time

    def test_scatter_persons_inside_area(self):
        world = World(area_size_m=(100.0, 50.0))
        persons = world.scatter_persons(20)
        assert len(persons) == 20
        for person in persons:
            assert 0.0 <= person.position[0] <= 100.0
            assert 0.0 <= person.position[1] <= 50.0

    def test_run_until_invokes_callback(self):
        world = World(dt=1.0)
        ticks = []
        world.run_until(5.0, callback=lambda w: ticks.append(w.time))
        assert len(ticks) == 5

    def test_undetected_persons(self):
        world = World()
        world.scatter_persons(3)
        world.persons[0].detected = True
        assert len(world.undetected_persons()) == 2
