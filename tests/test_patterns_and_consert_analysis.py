"""Unit tests for SAR search patterns and ConSert static analysis."""

import math

import pytest

from repro.core.analysis import (
    find_composition_cycles,
    find_unbound_demands,
    guarantee_reachability,
    validate_composition,
)
from repro.core.conserts import AndNode, ConSert, Demand, Guarantee, RuntimeEvidence
from repro.core.uav_network import UavConSertNetwork
from repro.sar.coverage import swath_width_m
from repro.sar.patterns import (
    coverage_radius_profile,
    expanding_square,
    pattern_length_m,
    sector_search,
)

DATUM = (100.0, 100.0)


class TestExpandingSquare:
    def test_starts_at_datum(self):
        path = expanding_square(DATUM, 20.0, max_radius_m=80.0)
        assert path[0] == (100.0, 100.0, 20.0)

    def test_legs_grow(self):
        path = expanding_square(DATUM, 20.0, max_radius_m=100.0)
        lengths = [
            math.dist(a, b) for a, b in zip(path, path[1:])
        ]
        # Leg length is non-decreasing and strictly grows every two legs.
        assert all(b >= a - 1e-9 for a, b in zip(lengths, lengths[1:]))
        assert lengths[-1] > lengths[0]

    def test_stays_roughly_within_radius(self):
        path = expanding_square(DATUM, 20.0, max_radius_m=80.0)
        spacing = swath_width_m(20.0)
        for east, north, _ in path:
            assert math.hypot(east - DATUM[0], north - DATUM[1]) <= 2 * 80.0 + 2 * spacing

    def test_covers_inner_rings_densely(self):
        path = expanding_square(DATUM, 20.0, max_radius_m=100.0)
        profile = coverage_radius_profile(path, DATUM, [10.0, 40.0, 80.0], 20.0)
        assert profile[10.0] == pytest.approx(1.0, abs=0.05)
        assert profile[40.0] > 0.8

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            expanding_square(DATUM, 20.0, max_radius_m=0.0)

    def test_altitude_constant(self):
        path = expanding_square(DATUM, 35.0, max_radius_m=60.0)
        assert all(wp[2] == 35.0 for wp in path)


class TestSectorSearch:
    def test_passes_through_datum_repeatedly(self):
        path = sector_search(DATUM, 20.0, radius_m=60.0, n_sectors=3)
        datum_hits = sum(
            1 for wp in path if math.hypot(wp[0] - DATUM[0], wp[1] - DATUM[1]) < 1e-6
        )
        assert datum_hits >= 4  # start + one return per sector at least

    def test_stays_within_radius(self):
        path = sector_search(DATUM, 20.0, radius_m=60.0)
        for east, north, _ in path:
            assert math.hypot(east - DATUM[0], north - DATUM[1]) <= 60.0 + 1e-6

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            sector_search(DATUM, 20.0, radius_m=-1.0)
        with pytest.raises(ValueError):
            sector_search(DATUM, 20.0, radius_m=50.0, n_sectors=0)

    def test_denser_at_centre_than_edge(self):
        path = sector_search(DATUM, 20.0, radius_m=80.0, n_sectors=3)
        profile = coverage_radius_profile(path, DATUM, [10.0, 75.0], 20.0)
        assert profile[10.0] >= profile[75.0]

    def test_pattern_length_positive(self):
        path = sector_search(DATUM, 20.0, radius_m=60.0)
        assert pattern_length_m(path) > 6 * 60.0


def toy_pair(bound=True):
    provider = ConSert(
        name="provider",
        guarantees=[
            Guarantee("service_ok", AndNode([RuntimeEvidence("ok", True)])),
            Guarantee("service_down", None),
        ],
    )
    demand = Demand("d", frozenset({"service_ok"}))
    if bound:
        demand.bind(provider)
    consumer = ConSert(
        name="consumer",
        guarantees=[
            Guarantee("go", AndNode([demand])),
            Guarantee("stop", None),
        ],
    )
    return provider, consumer


class TestConsertAnalysis:
    def test_unbound_demand_detected(self):
        provider, consumer = toy_pair(bound=False)
        assert find_unbound_demands([provider, consumer]) == [("consumer", "d")]

    def test_bound_composition_clean(self):
        provider, consumer = toy_pair()
        assert find_unbound_demands([provider, consumer]) == []
        assert find_composition_cycles([provider, consumer]) == []

    def test_cycle_detected(self):
        a = ConSert(name="a", guarantees=[Guarantee("a_ok", None)])
        b = ConSert(name="b", guarantees=[Guarantee("b_ok", None)])
        demand_ab = Demand("dab", frozenset({"b_ok"})).bind(b)
        demand_ba = Demand("dba", frozenset({"a_ok"})).bind(a)
        a.guarantees.insert(0, Guarantee("a_strong", AndNode([demand_ab])))
        b.guarantees.insert(0, Guarantee("b_strong", AndNode([demand_ba])))
        cycles = find_composition_cycles([a, b])
        assert cycles
        assert any(set(cycle) >= {"a", "b"} for cycle in cycles)

    def test_reachability_all_guarantees(self):
        provider, consumer = toy_pair()
        reports = {
            r.consert: r for r in guarantee_reachability([provider, consumer])
        }
        assert reports["consumer"].reachable == ["go", "stop"]
        assert reports["consumer"].unreachable == []

    def test_unreachable_guarantee_detected(self):
        impossible = ConSert(
            name="x",
            guarantees=[
                Guarantee(
                    "never",
                    AndNode(
                        [
                            # e and not-e can't both hold... model with an
                            # unbound demand, which never satisfies.
                            Demand("no_provider", frozenset({"ghost"})),
                        ]
                    ),
                ),
                Guarantee("always", None),
            ],
        )
        reports = guarantee_reachability([impossible])
        assert reports[0].unreachable == ["never"]

    def test_reachability_refuses_huge_networks(self):
        conserts = [
            ConSert(
                name=f"c{i}",
                guarantees=[
                    Guarantee("g", AndNode([RuntimeEvidence(f"e{i}_{j}") for j in range(3)])),
                    Guarantee("d", None),
                ],
            )
            for i in range(8)
        ]
        with pytest.raises(ValueError):
            guarantee_reachability(conserts, max_evidence=16)

    def test_full_uav_network_validates(self):
        network = UavConSertNetwork(uav_id="uav1")
        conserts = [
            network.security,
            network.gps_localization,
            network.vision_health,
            network.vision_localization,
            network.comm_localization,
            network.drone_detection,
            network.reliability,
            network.navigation,
            network.uav,
        ]
        result = validate_composition(conserts, max_evidence=16)
        assert result.unbound_demands == []
        assert result.cycles == []
        # Every guarantee in the Fig. 1 network is reachable.
        assert result.unreachable_guarantees == []
        assert result.ok
