"""Property suite for the swarm tasking stack: determinism + invariants.

Two families of guarantees:

* **Determinism** — one seed produces one byte-exact ledger, and the
  ``swarm-sizing`` campaign produces one manifest fingerprint regardless
  of worker count or how many times it runs. This is what lets the
  golden trace (``tests/test_golden_swarm.py``) and the CI swarm-smoke
  job treat a fingerprint mismatch as a regression, not noise.
* **Invariants** — random fleets (K ∈ 1–8, ρ ∈ 1–16, lossy links,
  scripted deaths and demotions) always close their books: every
  detected PoI ends serviced or explicitly orphaned, no follower ever
  owns two tasks at once, and service latency is non-negative. Checked
  both through the registered ``swarm_tasking`` oracle and by explicit
  re-derivation from the raw ledger, so an oracle bug can't silently
  vouch for a protocol bug.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.harness.campaign import run_campaign
from repro.harness.fuzz.campaign import fuzz_grid, fuzz_sample
from repro.harness.fuzz.generator import ScenarioGenerator
from repro.harness.oracles import SWARM_OUTCOMES, run_swarm_oracles
from repro.harness.timing import PhaseTimer
from repro.swarm.experiment import SWARM_SIZING_CAMPAIGN
from repro.swarm.sim import run_swarm

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: A lossy, faulted scenario small enough to run many times in a test.
BASE_CONFIG = {
    "k_leaders": 2,
    "rho": 3,
    "n_pois": 40,
    "area_m": 400.0,
    "comm_radius_m": 350.0,
    "link_loss": 0.15,
    "horizon_s": 120.0,
    "faults": [
        {"type": "follower_loss", "uav": "f00_01", "at": 30.0},
        {"type": "leader_demotion", "uav": "lead01", "at": 60.0},
    ],
}


class TestDeterminism:
    def test_same_seed_byte_identical_ledger(self):
        first = run_swarm(dict(BASE_CONFIG), seed=42)
        second = run_swarm(dict(BASE_CONFIG), seed=42)
        assert first.ledger.to_json() == second.ledger.to_json()
        assert first.ledger_fingerprint == second.ledger_fingerprint
        assert first.summary() == second.summary()
        assert first.latency_trace == second.latency_trace
        assert first.decisions == second.decisions

    def test_seed_reaches_the_world(self):
        # Different seed ⇒ different PoI field ⇒ different ledger; a
        # fingerprint that ignores the seed would vouch for anything.
        first = run_swarm(dict(BASE_CONFIG), seed=42)
        other = run_swarm(dict(BASE_CONFIG), seed=43)
        assert first.ledger_fingerprint != other.ledger_fingerprint

    def test_campaign_fingerprint_identical_across_clean_runs(self):
        first = run_campaign(SWARM_SIZING_CAMPAIGN, grid="smoke", workers=1)
        second = run_campaign(SWARM_SIZING_CAMPAIGN, grid="smoke", workers=1)
        assert all(r.status == "ok" for r in first.records)
        assert first.fingerprint == second.fingerprint

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_campaign_fingerprint_identical_serial_vs_parallel(self):
        serial = run_campaign(SWARM_SIZING_CAMPAIGN, grid="smoke", workers=1)
        parallel = run_campaign(SWARM_SIZING_CAMPAIGN, grid="smoke", workers=2)
        assert all(r.status == "ok" for r in parallel.records)
        assert serial.fingerprint == parallel.fingerprint

    def test_fuzz_swarm_draw_is_deterministic(self):
        first = ScenarioGenerator(11).generate_swarm("hostile")
        second = ScenarioGenerator(11).generate_swarm("hostile")
        assert first == second
        corpus = {
            ScenarioGenerator(s).generate_swarm("hostile")["seed"]
            for s in range(8)
        }
        assert len(corpus) == 8  # root seed varies the drawn scenario


def _random_config(rng: np.random.Generator) -> dict:
    """One random fleet in the satellite's advertised envelope."""
    k = int(rng.integers(1, 9))
    rho = int(rng.integers(1, 17))
    area = float(round(rng.uniform(300.0, 800.0)))
    config = {
        "k_leaders": k,
        "rho": rho,
        "n_pois": int(rng.integers(5, 60)),
        "area_m": area,
        "comm_radius_m": float(round(rng.uniform(0.4 * area, 1.2 * area))),
        "link_loss": float(round(rng.uniform(0.0, 0.5), 3)),
        "horizon_s": 90.0,
        "task_timeout_s": float(round(rng.uniform(20.0, 90.0), 1)),
        "follower_dead_after_s": float(round(rng.uniform(20.0, 60.0), 1)),
    }
    faults = []
    if rng.random() < 0.5:
        faults.append(
            {
                "type": "follower_loss",
                "uav": f"f{int(rng.integers(k)):02d}_{int(rng.integers(rho)):02d}",
                "at": float(round(rng.uniform(5.0, 60.0), 1)),
            }
        )
    if rng.random() < 0.4:
        faults.append(
            {
                "type": "leader_demotion",
                "uav": f"lead{int(rng.integers(k)):02d}",
                "at": float(round(rng.uniform(5.0, 60.0), 1)),
            }
        )
    config["faults"] = faults
    return config


class TestRandomFleetInvariants:
    @pytest.mark.parametrize("case", range(10))
    def test_oracle_passes(self, case):
        rng = np.random.default_rng(5000 + case)
        config = _random_config(rng)
        report = run_swarm_oracles(config, seed=case)
        assert report.passed, (config, report.to_dict())

    @pytest.mark.parametrize("case", range(10))
    def test_explicit_ledger_invariants(self, case):
        rng = np.random.default_rng(5000 + case)
        config = _random_config(rng)
        run = run_swarm(config, seed=case)

        # Every detected PoI is accounted for: serviced or explicitly
        # orphaned — nothing left pending/assigned after finalize.
        assert run.metrics["serviced"] + run.metrics["orphaned"] == len(run.ledger)
        assert run.metrics["detected"] == len(run.ledger)
        by_follower: dict[str, list[tuple[float, float | None]]] = {}
        for poi_id in sorted(run.ledger.tasks):
            task = run.ledger.tasks[poi_id]
            assert task.state in ("serviced", "orphaned")
            outcomes = [a.outcome for a in task.assignments]
            assert all(o in SWARM_OUTCOMES for o in outcomes)
            if task.state == "serviced":
                assert outcomes.count("confirmed") == 1
                assert task.service_latency_s is not None
                assert task.service_latency_s >= 0.0
                assert task.t_serviced >= task.t_detected
            else:
                assert task.orphan_reason in ("horizon", "no_leader")
                assert "confirmed" not in outcomes
            for assignment in task.assignments:
                by_follower.setdefault(assignment.follower, []).append(
                    (assignment.t_assign, assignment.t_closed)
                )

        # No double ownership: one follower's ownership intervals never
        # overlap, across all tasks it ever touched.
        for intervals in by_follower.values():
            intervals.sort(key=lambda iv: iv[0])
            for (_, end), (start, _) in zip(intervals, intervals[1:]):
                assert end is not None and end <= start

        # The latency trace agrees with the ledger it was derived from.
        for entry in run.latency_trace:
            assert entry["latency_s"] == entry["t_serviced"] - entry["t_detected"]
            assert entry["latency_s"] >= 0.0


class TestFuzzIntegration:
    def test_hostile_grid_carries_swarm_cases(self):
        grid = fuzz_grid("hostile:8")
        kinds = [config.get("kind", "sar") for config in grid]
        assert kinds == ["sar"] * 6 + ["swarm"] * 2
        # The CI smoke tier stays pure SAR — its documented fingerprint
        # must not move because swarm fuzzing exists.
        assert all("kind" not in config for config in fuzz_grid("smoke:5"))

    def test_swarm_fuzz_sample_end_to_end(self):
        record = fuzz_sample(
            {"profile": "hostile", "case": 0, "kind": "swarm"},
            seed=3,
            timer=PhaseTimer(),
        )
        assert record["kind"] == "swarm"
        assert record["oracles"]["passed"], record["oracles"]
        assert {"swarm_tasking", "no_unhandled_exception"} <= set(
            record["oracles"]["checked"]
        )
