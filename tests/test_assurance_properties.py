"""Property tests for the batched assurance plane.

Where ``tests/test_assurance_equivalence.py`` proves the batched plane
*equals* the scalar reference, this file proves both satisfy the
semantic invariants the assurance layer is supposed to have — expressed
through the shared predicates in :mod:`repro.harness.oracles` so the
fuzzing campaign checks exactly the same properties:

* ConSert guarantees are monotone under evidence decay: losing evidence
  never *improves* the offered guarantee (``demotion_monotone_ok``).
* SafeDrones reliability demotions driven by a continuously-evolving
  failure probability pass through every level (``demotion_step_ok``).
* SafeML statistical distances respect their analytic ranges
  (``distance_in_bounds``) and vanish on identical windows.
* The compiled boolean programs agree with the scalar ConSert trees on
  *arbitrary* evidence (not just trajectories a simulation can reach),
  and the zero-UAV / single-UAV edges behave.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import (
    BatchSafeDrones,
    compiled_conserts,
    stacked_safeml_reports,
)
from repro.core.uav_network import UavConSertNetwork
from repro.harness.oracles import (
    RELIABILITY_RANK,
    demotion_monotone_ok,
    demotion_step_ok,
    distance_in_bounds,
    guarantee_rank,
)
from repro.safedrones.monitor import ReliabilityLevel, SafeDronesMonitor
from repro.safeml.distances import ALL_MEASURES
from repro.safeml.monitor import SafeMlMonitor


# ------------------------------------------------------------ ConSert layer
def _scalar_offers(evidence: dict[str, bool]) -> dict[str, int]:
    """Evaluate the scalar template network; offer index per ConSert."""
    compiled = compiled_conserts()
    network = UavConSertNetwork(uav_id="prop")
    network.set_reliability_level("high")
    for name in compiled.fields:
        for node in getattr(network, name).evidence_nodes():
            node.value = evidence[node.name]
    out = {}
    for name in compiled.fields:
        offered = getattr(network, name).evaluate()
        names = compiled.guarantee_names[name]
        out[name] = names.index(offered.name) if offered is not None else -1
    return out


def test_guarantee_monotone_under_evidence_decay():
    """Evidence only decaying -> the offered guarantee never improves."""
    compiled = compiled_conserts()
    names = list(compiled.evidence_defaults)
    rng = np.random.default_rng(7)
    for _ in range(50):
        n = int(rng.integers(1, 9))
        evidence = {k: np.ones(n, dtype=bool) for k in names}
        orders = [rng.permutation(len(names)) for _ in range(n)]
        prev = [
            compiled.uav_guarantees[i]
            for i in compiled.evaluate(evidence, n)["uav"]
        ]
        assert all(guarantee_rank(g) == 0 for g in prev)  # all-good start
        for step in range(len(names)):
            for row in range(n):
                evidence[names[orders[row][step]]][row] = False
            cur = [
                compiled.uav_guarantees[i]
                for i in compiled.evaluate(evidence, n)["uav"]
            ]
            for row in range(n):
                assert demotion_monotone_ok(prev[row], cur[row]), (
                    f"row {row} improved {prev[row]} -> {cur[row]} "
                    "while losing evidence"
                )
            prev = cur
        # Everything lost -> the worst guarantee, not a missing offer.
        assert all(guarantee_rank(g) == 4 for g in prev)


def test_compiled_programs_match_scalar_trees_on_arbitrary_evidence():
    """Compiled offers == scalar tree evaluation for random evidence.

    Arbitrary boolean assignments cover combinations no simulated
    trajectory reaches (e.g. reliability_medium without reliability_high).
    """
    compiled = compiled_conserts()
    names = list(compiled.evidence_defaults)
    rng = np.random.default_rng(11)
    n = 64
    for _ in range(20):
        stacked = {k: rng.random(n) < 0.5 for k in names}
        offers = compiled.evaluate(stacked, n)
        for row in range(n):
            scalar = _scalar_offers(
                {k: bool(stacked[k][row]) for k in names}
            )
            batched = {k: int(v[row]) for k, v in offers.items()}
            assert batched == scalar, f"row {row}: {batched} != {scalar}"


def test_zero_rows_evaluate_cleanly():
    compiled = compiled_conserts()
    evidence = {
        k: np.zeros(0, dtype=bool) for k in compiled.evidence_defaults
    }
    offers = compiled.evaluate(evidence, 0)
    assert set(offers) == set(compiled.fields)
    assert all(v.shape == (0,) for v in offers.values())


# ---------------------------------------------------------- SafeDrones bank
def test_reliability_demotion_never_skips_levels():
    """Continuous PoF growth demotes HIGH -> MEDIUM -> LOW, one at a time."""
    rng = np.random.default_rng(23)
    n = 8
    monitors = BatchSafeDrones(n, [4] * n)
    soc = rng.uniform(0.3, 0.7, n)
    temp = rng.uniform(55.0, 68.0, n)
    dt = 30.0
    now = 0.0
    prev = [ReliabilityLevel.HIGH] * n
    seen = [set() for _ in range(n)]
    for _ in range(200):
        now += dt
        monitors.update(now, soc, temp)
        for row in range(n):
            level = monitors.assessment(row).level
            assert demotion_step_ok(prev[row], level), (
                f"row {row} skipped {prev[row]} -> {level}"
            )
            seen[row].add(level)
            prev[row] = level
        if all(p is ReliabilityLevel.LOW for p in prev):
            break
    # The run must actually traverse the whole ladder to prove anything.
    assert all(s == set(ReliabilityLevel) for s in seen)


def test_single_row_bank_matches_scalar_monitor():
    """n=1 stacked SafeDrones is bitwise the scalar monitor."""
    batched = BatchSafeDrones(1, [6], pof_abort_threshold=0.7)
    scalar = SafeDronesMonitor(
        uav_id="solo", rotor_count=6, pof_abort_threshold=0.7
    )
    rng = np.random.default_rng(3)
    now = 0.0
    soc, temp = 0.9, 25.0
    for _ in range(100):
        now += float(rng.uniform(0.5, 5.0))
        soc = max(0.05, soc - float(rng.uniform(0.0, 0.02)))
        temp += float(rng.uniform(-0.5, 1.5))
        motors = int(rng.integers(0, 3))
        batched.update(
            now, np.array([soc]), np.array([temp]), np.array([motors])
        )
        reference = scalar.update(now, soc, temp, motors_failed=motors)
        measured = batched.assessment(0)
        assert measured.failure_probability == reference.failure_probability
        assert measured.battery_pof == reference.battery_pof
        assert measured.propulsion_pof == reference.propulsion_pof
        assert measured.processor_pof == reference.processor_pof
        assert measured.level is reference.level
        assert measured.abort_recommended == reference.abort_recommended


def test_reliability_rank_covers_vocabulary():
    assert [RELIABILITY_RANK[level] for level in ReliabilityLevel] == [0, 1, 2]


# --------------------------------------------------------------- SafeML ECDF
def _fitted_monitor(measure: str, rng, shift: float) -> SafeMlMonitor:
    monitor = SafeMlMonitor(measure=measure, window_size=16)
    monitor.fit(rng.normal(0.0, 1.0, size=(64, 3)))
    for _ in range(16):
        monitor.observe(rng.normal(shift, 1.0, size=3))
    return monitor


@pytest.mark.parametrize("measure", sorted(ALL_MEASURES))
def test_stacked_distances_respect_bounds(measure):
    """Every stacked distance is finite, >= 0, and below its sup."""
    rng = np.random.default_rng(29)
    monitors = [
        _fitted_monitor(measure, rng, shift)
        for shift in (0.0, 0.5, 2.0, 10.0, -25.0)
    ]
    for report in stacked_safeml_reports(monitors, now=1.0):
        for value in report.distances.values():
            assert distance_in_bounds(measure, value), (
                f"{measure} out of bounds: {value!r}"
            )


@pytest.mark.parametrize("measure", sorted(ALL_MEASURES))
def test_identical_windows_have_zero_distance(measure):
    """A window drawn exactly from the training sample measures zero."""
    rng = np.random.default_rng(31)
    training = rng.normal(0.0, 1.0, size=(32, 2))
    monitor = SafeMlMonitor(measure=measure, window_size=32)
    monitor.fit(np.vstack([training, training]))
    for row in training:
        monitor.observe(row)
    (report,) = stacked_safeml_reports([monitor], now=1.0)
    # The window IS (half of) the reference sample: both ECDFs coincide
    # on the pooled support, so every measure must return exactly 0.
    assert all(value == 0.0 for value in report.distances.values()), (
        report.distances
    )
