"""Geometric properties of the SAR search patterns.

Every pattern declares a containment contract — an expanding square and a
sector search never leave their assigned radius, a sector sweep never
leaves its strip — and the camera-driven patterns promise that adjacent
parallel tracks sit no further apart than the camera swath (otherwise the
ground between tracks is never imaged). These tests pin both, plus the
``sector_search`` chord-heading regression: the chord offset must follow
the actual sector angle (``180 / n_sectors`` degrees), not the historical
``60°`` constant that was only correct for three sectors.
"""

from __future__ import annotations

import math

import pytest

from repro.sar.coverage import boustrophedon_path, swath_width_m
from repro.sar.patterns import (
    expanding_square,
    sector_partition,
    sector_search,
    sector_sweep,
)

DATUM = (120.0, 80.0)
ALTITUDE = 25.0


def _bearing_deg(point, datum) -> float:
    """Compass bearing of ``point`` from ``datum`` (0 = north, 90 = east)."""
    return math.degrees(
        math.atan2(point[0] - datum[0], point[1] - datum[1])
    ) % 360.0


class TestExpandingSquareContainment:
    @pytest.mark.parametrize("radius", [40.0, 80.0, 150.0])
    def test_never_leaves_declared_radius(self, radius):
        path = expanding_square(DATUM, ALTITUDE, max_radius_m=radius)
        assert len(path) >= 2
        for east, north, up in path:
            assert math.hypot(east - DATUM[0], north - DATUM[1]) <= radius + 1e-9
            assert up == ALTITUDE

    def test_starts_at_datum(self):
        path = expanding_square(DATUM, ALTITUDE, max_radius_m=100.0)
        assert path[0] == (DATUM[0], DATUM[1], ALTITUDE)

    @pytest.mark.parametrize(
        "altitude, half_fov, overlap",
        [(15.0, 35.0, 0.15), (25.0, 35.0, 0.15), (25.0, 20.0, 0.3)],
    )
    def test_parallel_tracks_within_swath(self, altitude, half_fov, overlap):
        # The spiral's vertical (north-south) legs are the coverage
        # tracks; any adjacent pair further apart than the swath leaves
        # an unimaged gap between them. (The east-west legs alone are NOT
        # swath-dense — the datum row has no horizontal leg — so the
        # property is stated on the north-south tracks.)
        swath = swath_width_m(altitude, half_fov, overlap)
        path = expanding_square(
            DATUM, altitude, max_radius_m=150.0,
            half_fov_deg=half_fov, overlap=overlap,
        )
        easts = sorted(
            {a[0] for a, b in zip(path, path[1:]) if a[0] == b[0]}
        )
        assert len(easts) >= 2
        for lo, hi in zip(easts, easts[1:]):
            assert hi - lo <= swath + 1e-9


class TestSectorSearchGeometry:
    RADIUS = 70.0

    @pytest.mark.parametrize("n_sectors", [2, 3, 4, 6])
    def test_all_waypoints_on_radius_or_datum(self, n_sectors):
        path = sector_search(
            DATUM, ALTITUDE, radius_m=self.RADIUS, n_sectors=n_sectors
        )
        for east, north, up in path:
            dist = math.hypot(east - DATUM[0], north - DATUM[1])
            assert dist == pytest.approx(0.0, abs=1e-9) or dist == pytest.approx(
                self.RADIUS, abs=1e-9
            )
            assert up == ALTITUDE

    @pytest.mark.parametrize("n_sectors", [2, 3, 4, 6])
    def test_chord_waypoints_on_radius(self, n_sectors):
        # Regression for the hardcoded 60° chord heading: every sector's
        # chord waypoint (index 2, 5, 8, ... in the out/chord/datum
        # cadence) must land back on the search-radius circle.
        path = sector_search(
            DATUM, ALTITUDE, radius_m=self.RADIUS, n_sectors=n_sectors
        )
        chords = path[2::3]
        assert len(chords) == n_sectors * 2
        for east, north, _ in chords:
            assert math.hypot(east - DATUM[0], north - DATUM[1]) == pytest.approx(
                self.RADIUS, abs=1e-9
            )

    @pytest.mark.parametrize("n_sectors", [2, 3, 4, 6])
    def test_chord_spans_half_a_sector(self, n_sectors):
        # The discriminating half of the regression: the chord's far end
        # must sit 180/n degrees around the circle from its spoke — the
        # old constant put it 60° around regardless of n_sectors, which
        # only matches for n_sectors == 3.
        path = sector_search(
            DATUM, ALTITUDE, radius_m=self.RADIUS, n_sectors=n_sectors
        )
        spokes = path[1::3]
        chords = path[2::3]
        expected = 180.0 / n_sectors
        for spoke, chord in zip(spokes, chords):
            offset = (
                _bearing_deg(chord, DATUM) - _bearing_deg(spoke, DATUM)
            ) % 360.0
            assert offset == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("n_sectors", [1, 2, 3, 4, 6])
    def test_never_leaves_declared_radius(self, n_sectors):
        path = sector_search(
            DATUM, ALTITUDE, radius_m=self.RADIUS, n_sectors=n_sectors
        )
        for east, north, _ in path:
            assert (
                math.hypot(east - DATUM[0], north - DATUM[1])
                <= self.RADIUS + 1e-9
            )

    def test_datum_passes_between_sectors(self):
        path = sector_search(DATUM, ALTITUDE, radius_m=self.RADIUS, n_sectors=4)
        for waypoint in path[0::3]:
            assert waypoint == (DATUM[0], DATUM[1], ALTITUDE)


class TestSectorSweepContainment:
    AREA = 300.0

    @pytest.mark.parametrize("k_sectors", [1, 2, 3, 5])
    def test_waypoints_stay_inside_their_strip(self, k_sectors):
        for sector in range(k_sectors):
            east_min, east_max = sector_partition(self.AREA, k_sectors)[sector]
            path = sector_sweep(
                self.AREA, k_sectors, sector, ALTITUDE, spacing_m=25.0
            )
            assert path
            for east, north, up in path:
                assert east_min - 1e-9 <= east <= east_max + 1e-9
                assert 0.0 <= north <= self.AREA
                assert up == ALTITUDE

    def test_tracks_tile_the_strip_when_spacing_divides(self):
        # 100 m strip at 25 m spacing: four tracks, centred, pitch never
        # wider than declared.
        path = sector_sweep(300.0, 3, 1, ALTITUDE, spacing_m=25.0)
        easts = sorted({wp[0] for wp in path})
        assert len(easts) == 4
        for lo, hi in zip(easts, easts[1:]):
            assert hi - lo <= 25.0 + 1e-9

    def test_serpentine_alternates_direction(self):
        path = sector_sweep(300.0, 3, 0, ALTITUDE, spacing_m=25.0)
        # Consecutive waypoints per track share an east; track ends meet
        # at the same north, so the sweep is flyable without dead legs.
        for (e1, n1, _), (e2, n2, _) in zip(path[1:-1:2], path[2::2]):
            assert n1 == n2 and e1 != e2


class TestTrackSpacingVsSwath:
    @pytest.mark.parametrize(
        "altitude, half_fov, overlap",
        [(15.0, 35.0, 0.15), (20.0, 20.0, 0.3), (30.0, 45.0, 0.0)],
    )
    def test_boustrophedon_tracks_within_swath(self, altitude, half_fov, overlap):
        swath = swath_width_m(altitude, half_fov, overlap)
        bounds = ((0.0, 400.0), (0.0, 300.0))
        path = boustrophedon_path(bounds, altitude, half_fov, overlap)
        easts = sorted({wp[0] for wp in path})
        assert len(easts) == math.ceil(400.0 / swath)
        for lo, hi in zip(easts, easts[1:]):
            assert hi - lo <= swath + 1e-9
