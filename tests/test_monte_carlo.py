"""Tests for the Fig. 5 Monte Carlo robustness study."""

import pytest

import repro.experiments.fig5_battery as fig5
from repro.experiments.monte_carlo import run_monte_carlo_fig5


@pytest.fixture(scope="module")
def mc_result():
    # Small grid keeps the test fast while exercising all sweep axes.
    return run_monte_carlo_fig5(
        fault_times=(250.0, 350.0), soc_levels=(0.40,), seeds=(3,)
    )


class TestMonteCarlo:
    def test_sample_count_matches_grid(self, mc_result):
        assert len(mc_result.samples) == 2

    def test_sesame_never_loses(self, mc_result):
        for sample in mc_result.samples:
            assert (
                sample.availability_with >= sample.availability_without - 1e-9
            )

    def test_positive_mean_advantage(self, mc_result):
        assert mc_result.mean_advantage > 0.0

    def test_win_rate_is_high(self, mc_result):
        assert mc_result.win_rate >= 0.5

    def test_scenario_constants_restored(self, mc_result):
        assert fig5.FAULT_TIME_S == 250.0
        assert fig5.SOC_AFTER_FAULT == 0.40

    def test_samples_record_sweep_parameters(self, mc_result):
        fault_times = {s.fault_time_s for s in mc_result.samples}
        assert fault_times == {250.0, 350.0}
