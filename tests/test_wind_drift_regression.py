"""Regression tests for wind-drift sensing and the guarantee timeline.

Pins down a subtle integration bug: unrejected wind drift physically
displaces the vehicle outside its commanded kinematics; if inertial
sensing does not report that drift, the spoofing detector's dead
reckoning diverges from GPS truth and false-alarms in any windy mission
(observed as spurious emergency landings before the fix).
"""

import numpy as np
import pytest

from repro.core.adapters import build_fleet_eddis
from repro.core.uav_network import UavGuarantee
from repro.experiments.common import build_three_uav_world
from repro.platform.gui import render_guarantee_timeline
from repro.security.spoofing import GpsSpoofingDetector
from repro.uav.environment import Environment, GustProcess


def windy_world(seed=11, wind_mps=6.0):
    scenario = build_three_uav_world(seed=seed, n_persons=0)
    world = scenario.world
    world.environment = Environment(
        rng=np.random.default_rng(seed + 50),
        wind_direction_deg=250.0,
        gusts=GustProcess(rng=np.random.default_rng(seed + 51), mean_mps=wind_mps),
    )
    return world


class TestWindDriftSensing:
    def test_ground_velocity_includes_drift(self):
        world = windy_world()
        uav = world.uavs["uav1"]
        uav.start_mission([(200.0, 250.0, 20.0)])
        for _ in range(40):
            world.step()
        drift = uav.dynamics.drift_velocity
        assert drift != (0.0, 0.0, 0.0)
        ground = uav.dynamics.ground_velocity
        assert ground == pytest.approx(
            tuple(v + d for v, d in zip(uav.dynamics.velocity, drift))
        )

    def test_drift_cleared_on_ground(self):
        world = windy_world()
        uav = world.uavs["uav1"]  # stays landed (IDLE)
        for _ in range(20):
            world.step()
        assert uav.dynamics.drift_velocity == (0.0, 0.0, 0.0)

    def test_no_spoof_false_positive_in_wind(self):
        """The regression: a windy clean mission must not trip the detector."""
        world = windy_world(wind_mps=8.0)
        uav = world.uavs["uav1"]
        uav.start_mission(
            [(100.0, 250.0, 20.0), (150.0, 20.0, 20.0), (200.0, 250.0, 20.0)]
        )
        detector = GpsSpoofingDetector()
        while world.time < 120.0:
            world.step()
            fix = uav.sensors.gps.measure(uav.dynamics.position, world.time)
            if fix.valid:
                detector.update(
                    world.time,
                    world.frame.to_enu(fix.point),
                    uav.sensors.imu.measure(uav.dynamics.ground_velocity),
                    world.dt,
                )
        assert not detector.spoof_detected

    def test_windy_mission_keeps_full_guarantees(self):
        world = windy_world(wind_mps=6.0)
        fleet = build_fleet_eddis(world, cl_range_m=300.0)
        for uav in world.uavs.values():
            uav.start_mission([(150.0, 250.0, 20.0)])
        last = {}
        while world.time < 60.0:
            world.step()
            for uav_id, (eddi, _) in fleet.items():
                last[uav_id] = eddi.step(world.time)
        assert all(
            guarantee is UavGuarantee.CONTINUE_MISSION_EXTRA
            for guarantee in last.values()
        )


class TestGuaranteeTimeline:
    def test_renders_transitions_and_occupancy(self):
        world = windy_world()
        fleet = build_fleet_eddis(world)
        eddi, stack = fleet["uav1"]
        for _ in range(10):
            world.step()
            eddi.step(world.time)
        stack.network.set_reliability_level("low")
        world.step()
        # Manually push evidence (the adapter would overwrite it); instead
        # evaluate once via the network directly through the eddi step with
        # a degraded battery.
        world.uavs["uav1"].battery.soc = 0.05
        world.uavs["uav1"].battery.temp_c = 95.0
        for _ in range(5):
            world.step()
            eddi.step(world.time)
        text = render_guarantee_timeline(eddi)
        assert "guarantee timeline" in text
        assert "(start) -> continue_mission_extra_tasks" in text
        assert "time in guarantee:" in text
