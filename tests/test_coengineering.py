"""Unit tests for the safety-security co-engineering bridge."""

import pytest

from repro.core.coengineering import (
    CoEngineeringMonitor,
    DependabilityLevel,
    SecurityInformedEvent,
)
from repro.middleware.rosbus import RosBus
from repro.safedrones.fta import FaultTree, OrGate, BasicEvent, ComplexBasicEvent
from repro.safedrones.monitor import SafeDronesMonitor
from repro.security.attack_trees import ros_spoofing_attack_tree
from repro.security.broker import MqttBroker
from repro.security.eddi import SecurityEddi
from repro.security.ids import IntrusionDetectionSystem


def make_monitors():
    bus = RosBus()
    broker = MqttBroker()
    ids = IntrusionDetectionSystem(bus=bus, broker=broker)
    for node in ("uav1", "gcs"):
        ids.register_node(node)
    safety = SafeDronesMonitor(uav_id="uav1")
    security = SecurityEddi(tree=ros_spoofing_attack_tree(), broker=broker)
    return bus, ids, safety, security


class TestSecurityInformedEvent:
    def test_zero_when_no_attack(self):
        event = SecurityInformedEvent("attack", ros_spoofing_attack_tree())
        assert event.failure_probability == 0.0

    def test_partial_progress_contributes(self):
        tree = ros_spoofing_attack_tree()
        tree.mark_achieved("inject_messages")
        event = SecurityInformedEvent("attack", tree)
        assert 0.0 < event.failure_probability < event.success_given_goal

    def test_goal_reached_yields_full_conditional(self):
        tree = ros_spoofing_attack_tree()
        tree.mark_achieved("network_intrusion")
        tree.mark_achieved("inject_messages")
        event = SecurityInformedEvent("attack", tree, success_given_goal=0.8)
        assert event.failure_probability == pytest.approx(0.8)

    def test_rejects_bad_conditional(self):
        with pytest.raises(ValueError):
            SecurityInformedEvent("a", ros_spoofing_attack_tree(), success_given_goal=1.5)

    def test_composes_into_fault_tree(self):
        tree = ros_spoofing_attack_tree()
        loss = FaultTree(
            name="uav_loss",
            top=OrGate(
                "loss",
                [
                    BasicEvent("battery", 0.05),
                    ComplexBasicEvent(
                        "cyber", SecurityInformedEvent("attack", tree)
                    ),
                ],
            ),
        )
        baseline = loss.top_event_probability()
        tree.mark_achieved("network_intrusion")
        tree.mark_achieved("inject_messages")
        assert loss.top_event_probability() > baseline


class TestCoEngineeringMonitor:
    def test_healthy_and_clean_is_dependable(self):
        _, _, safety, security = make_monitors()
        safety.update(0.0, 0.9, 25.0)
        monitor = CoEngineeringMonitor(safety=safety, security=security)
        assessment = monitor.assess(1.0)
        assert assessment.level is DependabilityLevel.DEPENDABLE
        assert not assessment.attack_goal_reached

    def test_attack_goal_forces_compromised(self):
        bus, ids, safety, security = make_monitors()
        safety.update(0.0, 0.9, 25.0)
        bus.publish("/uav1/pose", 1, sender="uav1", origin="adversary")
        ids.scan(0.0)
        monitor = CoEngineeringMonitor(safety=safety, security=security)
        assessment = monitor.assess(1.0)
        assert assessment.level is DependabilityLevel.COMPROMISED

    def test_low_reliability_degrades(self):
        _, _, safety, security = make_monitors()
        safety.update(0.0, 0.80, 30.0)
        safety.update(1.0, 0.40, 85.0)  # fault
        for t in range(2, 1500, 5):
            assessment = safety.update(float(t), 0.35, 85.0)
            if assessment.level.value == "low":
                break
        monitor = CoEngineeringMonitor(safety=safety, security=security)
        assert monitor.assess(2000.0).level is DependabilityLevel.DEGRADED

    def test_medium_reliability_with_attack_progress_degrades(self):
        _, _, safety, security = make_monitors()
        safety.update(0.0, 0.80, 30.0)
        safety.update(1.0, 0.40, 85.0)
        # Drive PoF into the MEDIUM band.
        assessment = None
        for t in range(2, 1500, 5):
            assessment = safety.update(float(t), 0.35, 85.0)
            if assessment.level.value == "medium":
                break
        assert assessment.level.value == "medium"
        security.tree.mark_achieved("inject_messages")  # partial attack
        monitor = CoEngineeringMonitor(safety=safety, security=security)
        assert monitor.assess(t + 1.0).level is DependabilityLevel.DEGRADED

    def test_combined_pof_at_least_safety_pof(self):
        _, _, safety, security = make_monitors()
        safety.update(0.0, 0.9, 25.0)
        safety.update(100.0, 0.9, 25.0)
        monitor = CoEngineeringMonitor(safety=safety, security=security)
        assessment = monitor.assess(101.0)
        assert (
            assessment.combined_failure_probability
            >= safety.latest.failure_probability - 1e-12
        )

    def test_history_accumulates(self):
        _, _, safety, security = make_monitors()
        safety.update(0.0, 0.9, 25.0)
        monitor = CoEngineeringMonitor(safety=safety, security=security)
        monitor.assess(1.0)
        monitor.assess(2.0)
        assert len(monitor.history) == 2
