"""The fuzz campaign and the failure shrinker, end to end.

Covers the full loop the ISSUE's acceptance criteria describe: a clean
engine fuzzes green with a deterministic manifest fingerprint; a
chaos-armed (intentionally broken) engine yields oracle violations,
and the shrinker reduces each violating scenario to a strictly smaller
standalone reproducer.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.fuzz import run_fuzz, shrink_scenario
from repro.harness.fuzz.campaign import (
    fuzz_grid,
    fuzz_sample,
    sample_scenario,
)
from repro.harness.fuzz.generator import ScenarioGenerator
from repro.harness.fuzz.shrink import scenario_size
from repro.harness.manifest import manifest_fingerprint, read_manifest
from repro.harness.oracles import run_scenario_oracles
from repro.harness.timing import PhaseTimer

CHAOS = {"mode": "teleport", "uav": "uav1", "at": 10.0}


class TestFuzzGrid:
    def test_preset_parsing(self):
        assert len(fuzz_grid("smoke:7")) == 7
        assert fuzz_grid("smoke:2") == [
            {"profile": "smoke", "case": 0},
            {"profile": "smoke", "case": 1},
        ]
        assert len(fuzz_grid("smoke")) > 0  # default count

    def test_bad_presets_rejected(self):
        with pytest.raises(KeyError):
            fuzz_grid("nightmare:5")
        with pytest.raises(ValueError):
            fuzz_grid("smoke:0")

    def test_registered_in_the_catalogue(self):
        from repro.experiments.campaigns import get_experiment

        assert get_experiment("fuzz").name == "fuzz"


class TestFuzzSample:
    def test_sample_carries_oracle_verdict(self):
        result = fuzz_sample({"profile": "smoke", "case": 0}, 123, PhaseTimer())
        assert result["oracles"]["passed"] is True
        assert result["profile"] == "smoke"
        assert result["n_uavs"] >= 1

    def test_scenario_reconstructible_from_seed_alone(self):
        # The manifest audit contract: config + seed fully determine the
        # scenario that ran.
        config = {"profile": "default", "case": 3}
        assert sample_scenario(config, 999) == sample_scenario(config, 999)
        assert (
            sample_scenario(config, 999)
            == ScenarioGenerator(999).generate("default")
        )

    def test_chaos_block_merges_into_generated_scenario(self):
        scenario = sample_scenario(
            {"profile": "smoke", "case": 0, "chaos": CHAOS}, 7
        )
        assert scenario["chaos"] == CHAOS

    def test_explicit_scenario_wins_over_generation(self):
        explicit = {"seed": 1, "uavs": [{"id": "u", "base": [0, 0, 0]}]}
        scenario = sample_scenario({"scenario": explicit}, 42)
        assert scenario == explicit


class TestFuzzCampaign:
    def test_clean_engine_fuzzes_green_and_deterministically(self, tmp_path):
        first = run_fuzz(
            "smoke", count=6, root_seed=11, workers=1,
            manifest_path=tmp_path / "m1.json",
        )
        second = run_fuzz(
            "smoke", count=6, root_seed=11, workers=3,
            manifest_path=tmp_path / "m2.json",
        )
        assert first.ok and second.ok
        m1, m2 = read_manifest(tmp_path / "m1.json"), read_manifest(tmp_path / "m2.json")
        assert manifest_fingerprint(m1) == manifest_fingerprint(m2)
        assert m1["schema_version"] == 3
        sample = m1["samples"][0]
        assert sample["oracles"]["passed"] is True
        assert sample["status"] == "ok"

    def test_oracles_block_participates_in_fingerprint(self, tmp_path):
        run_fuzz("smoke", count=2, root_seed=5,
                 manifest_path=tmp_path / "m.json")
        manifest = read_manifest(tmp_path / "m.json")
        baseline = manifest_fingerprint(manifest)
        manifest["samples"][0]["oracles"]["passed"] = False
        assert manifest_fingerprint(manifest) != baseline

    def test_chaos_armed_engine_is_caught_shrunk_and_reproducible(
        self, tmp_path
    ):
        outcome = run_fuzz(
            "smoke", count=2, root_seed=11, workers=1,
            manifest_path=tmp_path / "m.json",
            artifacts_dir=tmp_path / "artifacts",
            chaos=CHAOS, max_shrink=2,
        )
        assert not outcome.ok
        assert len(outcome.violations) == 2
        assert len(outcome.repro_paths) == 2
        for record in outcome.violations:
            # The quarantined verdict is in the manifest record.
            assert record.oracles["passed"] is False
            assert record.oracles["violations"][0]["oracle"] == "teleport_bound"
            path = outcome.repro_paths[record.seed]
            assert path.name == f"repro_{record.seed}.json"
            minimized = json.loads(path.read_text())
            # Strictly smaller than the scenario that originally ran...
            original = sample_scenario(record.config, record.seed)
            assert scenario_size(minimized) < scenario_size(original)
            # ...and still reproduces the failure standalone.
            replay = run_scenario_oracles(minimized)
            assert "teleport_bound" in replay.violated_oracles


class TestShrinker:
    def _violating_scenario(self):
        scenario = ScenarioGenerator(20).generate("default")
        scenario["chaos"] = dict(CHAOS)
        return scenario

    def test_minimized_scenario_reproduces_and_is_strictly_smaller(self):
        scenario = self._violating_scenario()
        assert not run_scenario_oracles(scenario).passed
        result = shrink_scenario(scenario)
        assert result.oracle == "teleport_bound"
        assert scenario_size(result.config) < scenario_size(scenario)
        replay = run_scenario_oracles(result.config)
        assert result.oracle in replay.violated_oracles

    def test_shrinks_to_the_chaos_essentials(self):
        result = shrink_scenario(self._violating_scenario())
        config = result.config
        # Only the chaos target can be load-bearing for a teleport bug.
        assert [uav["id"] for uav in config["uavs"]] == ["uav1"]
        assert config.get("faults", []) == []
        assert config.get("attacks", []) == []
        # Horizon clipped to just past the chaos fire time.
        assert config["horizon_s"] == pytest.approx(CHAOS["at"])

    def test_input_config_is_not_mutated(self):
        scenario = self._violating_scenario()
        snapshot = json.loads(json.dumps(scenario))
        shrink_scenario(scenario)
        assert scenario == snapshot

    def test_non_violating_scenario_rejected(self):
        scenario = ScenarioGenerator(20).generate("smoke")
        with pytest.raises(ValueError, match="violates no oracle"):
            shrink_scenario(scenario)

    def test_wrong_target_oracle_rejected(self):
        with pytest.raises(ValueError, match="does not violate"):
            shrink_scenario(
                self._violating_scenario(), target_oracle="soc_monotonic"
            )
