"""Service job model: payload validation, durable store, tenant sharding.

The parts of :mod:`repro.service` that need no running scheduler: the
structured field errors POST /jobs returns, the atomic on-disk job
records a restarted server recovers from, and the per-tenant cache
sharding that keeps one tenant's results out of another's manifests.
"""

from __future__ import annotations

import json

import pytest

import repro.experiments.campaigns  # noqa: F401  (registers experiments)
from repro.harness.cache import (
    DEFAULT_TENANT,
    tenant_cache_dir,
    validate_tenant_id,
)
from repro.service.jobs import (
    Job,
    JobStore,
    validate_job_payload,
)


def errors_by_field(errors: list[dict]) -> dict[str, str]:
    return {e["field"]: e["message"] for e in errors}


class TestValidateJobPayload:
    def test_valid_smoke_payload(self):
        assert validate_job_payload(
            {"experiment": "monte-carlo", "grid": "smoke"}
        ) == []

    def test_valid_custom_grid(self):
        payload = {
            "experiment": "synthetic",
            "grid": [{"n": 64, "loc": 0.0}, {"n": 64, "loc": 1.0}],
            "tenant": "alice",
            "root_seed": 3,
            "workers": 2,
            "priority": 5,
        }
        assert validate_job_payload(payload) == []

    def test_unknown_field_rejected(self):
        fields = errors_by_field(
            validate_job_payload(
                {"experiment": "monte-carlo", "grid": "smoke", "bogus": 1}
            )
        )
        assert "bogus" in fields
        assert "unknown field" in fields["bogus"]

    def test_unknown_experiment_lists_registered(self):
        fields = errors_by_field(
            validate_job_payload({"experiment": "nope", "grid": "smoke"})
        )
        assert "monte-carlo" in fields["experiment"]
        assert "synthetic" in fields["experiment"]

    def test_unknown_preset_lists_known_presets(self):
        fields = errors_by_field(
            validate_job_payload({"experiment": "synthetic", "grid": "huge"})
        )
        assert "grid" in fields
        assert "smoke" in fields["grid"]

    def test_preset_with_count_suffix_accepted(self):
        # fuzz presets support "profile:count" without resolving the grid.
        assert validate_job_payload(
            {"experiment": "fuzz", "grid": "smoke:3"}
        ) == []

    def test_preset_with_bad_count_rejected(self):
        fields = errors_by_field(
            validate_job_payload({"experiment": "fuzz", "grid": "smoke:zero"})
        )
        assert "grid" in fields

    def test_invalid_tenant_rejected(self):
        for bad in ("../escape", "", "a/b", ".hidden", "x" * 80):
            fields = errors_by_field(
                validate_job_payload(
                    {"experiment": "monte-carlo", "grid": "smoke", "tenant": bad}
                )
            )
            assert "tenant" in fields, bad

    def test_grid_entries_must_be_objects(self):
        fields = errors_by_field(
            validate_job_payload({"experiment": "synthetic", "grid": [1, 2]})
        )
        assert "grid[0]" in fields

    def test_embedded_scenario_linted_with_path_prefix(self):
        payload = {
            "experiment": "fuzz",
            "grid": [{"profile": "smoke", "scenario": {"uavs": "not-a-list"}}],
        }
        fields = errors_by_field(validate_job_payload(payload))
        assert any(f.startswith("grid[0].scenario") for f in fields), fields

    def test_worker_and_seed_bounds(self):
        fields = errors_by_field(
            validate_job_payload(
                {
                    "experiment": "monte-carlo",
                    "grid": "smoke",
                    "workers": 0,
                    "root_seed": "seven",
                    "priority": "high",
                }
            )
        )
        assert set(fields) >= {"workers", "root_seed", "priority"}

    def test_non_object_payload(self):
        errors = validate_job_payload(["not", "an", "object"])
        assert errors and "JSON object" in errors[0]["message"]
        assert errors_by_field(validate_job_payload({})).keys() >= {"experiment"}


class TestJob:
    def test_round_trip(self):
        job = Job.from_payload(
            {"experiment": "synthetic", "grid": "smoke", "tenant": "alice"},
            seq=4,
        )
        assert job.id.startswith("job-")
        assert job.state == "submitted"
        assert job.tenant == "alice"
        clone = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job

    def test_terminal_property(self):
        job = Job.from_payload(
            {"experiment": "synthetic", "grid": "smoke"}, seq=0
        )
        assert not job.terminal
        for state in ("done", "failed", "cancelled"):
            job.state = state
            assert job.terminal


class TestJobStore:
    def make_job(self, store: JobStore, **overrides) -> Job:
        payload = {"experiment": "synthetic", "grid": "smoke", **overrides}
        job = Job.from_payload(payload, seq=store.next_seq())
        store.save(job)
        return job

    def test_save_load_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        job = self.make_job(store, tenant="alice")
        assert store.load(job.id) == job
        assert store.load("job-missing") is None

    def test_list_orders_by_sequence(self, tmp_path):
        store = JobStore(tmp_path)
        jobs = [self.make_job(store) for _ in range(3)]
        assert [j.id for j in store.list_jobs()] == [j.id for j in jobs]

    def test_list_filters_by_tenant(self, tmp_path):
        store = JobStore(tmp_path)
        a = self.make_job(store, tenant="alice")
        self.make_job(store, tenant="bob")
        assert [j.id for j in store.list_jobs(tenant="alice")] == [a.id]

    def test_cancel_marker(self, tmp_path):
        store = JobStore(tmp_path)
        job = self.make_job(store)
        assert not store.cancel_requested(job.id)
        store.request_cancel(job.id)
        assert store.cancel_requested(job.id)
        store.clear_cancel(job.id)
        assert not store.cancel_requested(job.id)

    def test_recover_rewinds_non_terminal_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        running = self.make_job(store)
        running.state = "running"
        running.started_at = 5.0
        store.save(running)
        store.request_cancel(running.id)
        finished = self.make_job(store)
        finished.state = "done"
        finished.fingerprint = "abc"
        store.save(finished)

        recovered = JobStore(tmp_path)
        requeued = recovered.recover()
        assert [j.id for j in requeued] == [running.id]
        assert recovered.load(running.id).state == "queued"
        assert recovered.load(running.id).started_at is None
        assert not recovered.cancel_requested(running.id)
        # Terminal jobs are untouched.
        assert recovered.load(finished.id).state == "done"

    def test_next_seq_continues_after_restart(self, tmp_path):
        store = JobStore(tmp_path)
        jobs = [self.make_job(store) for _ in range(2)]
        fresh = JobStore(tmp_path)
        assert fresh.next_seq() > max(j.seq for j in jobs)


class TestTenantSharding:
    def test_validate_tenant_id(self):
        # Returns the *problem*: None means the id is acceptable.
        assert validate_tenant_id("alice") is None
        assert validate_tenant_id("team-7.staging_x") is None
        for bad in (None, "", "../up", "a b", "-lead", ".lead", "x" * 65, 7):
            assert validate_tenant_id(bad) is not None, bad

    def test_tenant_cache_dir_shards(self, tmp_path):
        alice = tenant_cache_dir(tmp_path, "alice")
        bob = tenant_cache_dir(tmp_path, "bob")
        assert alice != bob
        assert alice.parent == tmp_path
        assert alice.name == "alice"
        assert tenant_cache_dir(tmp_path) == tmp_path / DEFAULT_TENANT

    def test_tenant_cache_dir_rejects_traversal(self, tmp_path):
        with pytest.raises(ValueError):
            tenant_cache_dir(tmp_path, "../../etc")
        with pytest.raises(ValueError):
            tenant_cache_dir(tmp_path, "")
